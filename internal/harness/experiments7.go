package harness

// Experiment E15: bounded recovery at scale.
//
// PR 6 adds WAL compaction (incremental checkpoints at the stability
// cut) and streamed, resumable state transfer. E15 puts numbers on both
// halves of "bounded":
//
// Part A (recovery) — restart cost as the logged history grows 100×,
// compacted vs uncompacted. Without compaction the restart scans and
// replays the whole history, so its cost is linear in the log; with
// periodic checkpoints the replay is the post-checkpoint suffix, so the
// cost curve must go flat. Like E11 this part runs against the real
// filesystem: the quantity of interest is scan/decode/replay cost.
//
// Part B (rejoin) — a joiner catching up via the streamed transfer
// while the stream is attacked: the designated sender is killed
// mid-stream (failover must resume from the acked position, not byte
// zero) and chunk packets are dropped on the sender→joiner link
// (simnet.SetDropFilter; the reliable multicast layer must repair the
// gaps). Every scenario must converge with each chunk applied exactly
// once.

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/pgmp"
	"ftmp/internal/runtime"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
	"ftmp/internal/wal"
)

// E15RecoverResult is one restart measurement.
type E15RecoverResult struct {
	Records   int     // ops appended over the log's lifetime
	Compacted bool    // periodic Compact at the stability cut?
	DiskMB    float64 // on-disk bytes at the crash point
	Segments  int
	RecoverMs float64 // reopen: scan + checksum + decode + fold
	ReplayOps int     // deliveries a restart would re-apply
}

// RunE15Recovery appends n op records to a fresh log under dir —
// compacting every compactEvery records when compact is set, as a live
// deployment would at its stability cut — then crashes (closes) and
// measures the restart: wal.Open's full scan plus folding the records
// into a replay.
func RunE15Recovery(n, compactEvery, payload int, compact bool, dir string) (E15RecoverResult, error) {
	res := E15RecoverResult{Records: n, Compacted: compact}
	dfs, err := wal.NewDirFS(dir)
	if err != nil {
		return res, err
	}
	w, _, err := wal.Open(wal.Config{FS: dfs, Policy: wal.SyncNever})
	if err != nil {
		return res, err
	}
	// The retained epoch mirrors what a live group would carry across
	// compaction; the checkpoint state stands in for the servant
	// snapshot at the cut.
	state := make([]byte, 4096)
	retain := []wal.Record{{Type: wal.RecEpoch, Epoch: &wal.EpochRecord{
		Group: expGroup, ViewTS: ids.MakeTimestamp(1, 1), Members: ids.NewMembership(1, 2, 3),
	}}}
	for i := 0; i < n; i++ {
		if err := w.Append(e11Record(i, payload)); err != nil {
			return res, err
		}
		// The last interval stays uncompacted (a live group always has
		// in-flight history past its latest checkpoint), so the
		// measured replay is checkpoint restore + a bounded suffix.
		if compact && (i+1)%compactEvery == 0 && i+1 < n {
			if err := w.Compact(ids.MakeTimestamp(uint64(i+1), 1), state, retain); err != nil {
				return res, err
			}
		}
	}
	if err := w.Sync(); err != nil {
		return res, err
	}
	res.DiskMB = float64(w.DiskBytes()) / 1e6
	res.Segments = w.Segments()
	if err := w.Close(); err != nil {
		return res, err
	}

	start := time.Now()
	w2, rec, err := wal.Open(wal.Config{FS: dfs, Policy: wal.SyncNever})
	if err != nil {
		return res, err
	}
	rp := runtime.RecoverReplay(rec.Records)
	res.RecoverMs = float64(time.Since(start).Nanoseconds()) / 1e6
	res.ReplayOps = len(rp.Deliveries)
	_ = w2.Close()
	return res, nil
}

// E15Recovery sweeps restart cost across a 100× history growth, with
// and without periodic compaction.
func E15Recovery(sizes []int, compactEvery, payload int) *trace.Table {
	tb := trace.NewTable(
		"E15a: restart cost vs history size — compaction bounds replay to the post-checkpoint suffix",
		"records", "compacted", "disk MB", "segments", "recover ms", "replay ops")
	for _, n := range sizes {
		for _, compact := range []bool{false, true} {
			dir, err := os.MkdirTemp("", "ftmp-e15-*")
			if err != nil {
				tb.AddRow(n, compact, "", "", "error", err.Error())
				continue
			}
			r, err := RunE15Recovery(n, compactEvery, payload, compact, dir)
			if err != nil {
				tb.AddRow(n, compact, "", "", "error", err.Error())
			} else {
				tb.AddRow(r.Records, r.Compacted, fmt.Sprintf("%.2f", r.DiskMB), r.Segments,
					fmt.Sprintf("%.2f", r.RecoverMs), r.ReplayOps)
			}
			os.RemoveAll(dir)
		}
	}
	return tb
}

// e15Ledger is the Part B servant: a ledger whose snapshot carries a
// large constant pad, so the state transfer spans many 16 KiB chunks.
type e15Ledger struct {
	ledger
	pad []byte
}

func newE15Pad(n int) []byte {
	pad := make([]byte, n)
	for i := range pad {
		pad[i] = byte(i*11 + i>>7)
	}
	return pad
}

func (l *e15Ledger) SnapshotState() ([]byte, error) {
	e := giop.NewEncoder(false)
	e.OctetSeq(l.pad)
	e.LongLong(l.total)
	e.LongLong(l.applied)
	return e.Bytes(), nil
}

func (l *e15Ledger) RestoreState(b []byte) error {
	d := giop.NewDecoder(b, false)
	l.pad = d.OctetSeq()
	l.total = d.LongLong()
	l.applied = d.LongLong()
	return d.Err()
}

// E15 rejoin fault scenarios.
const (
	E15Clean      = "clean"
	E15SenderKill = "sender-kill"
	E15ChunkDrop  = "chunk-drop"
)

// E15RejoinResult is one streamed-rejoin measurement under an injected
// fault. XferMs is admission → caught up; -1 marks a stage never
// reached.
type E15RejoinResult struct {
	Scenario      string
	XferMs        float64
	ChunksApplied uint64 // distinct chunks the joiner staged
	ChunksSent    uint64 // chunk multicasts across all survivors
	Resumes       uint64 // failover takeovers during the run
	Dropped       uint64 // packets the injected fault removed
	Converged     bool
}

// RunE15Rejoin brings a joiner into a three-replica group whose state
// spans many chunks, injects the scenario's fault mid-stream, and
// measures the catch-up.
func RunE15Rejoin(scenario string, padBytes int, seed int64) E15RejoinResult {
	res := E15RejoinResult{Scenario: scenario, XferMs: -1}
	servers := ids.NewMembership(1, 2, 3)
	all := []ids.ProcessorID{1, 2, 3, 4, 5}
	c := NewCluster(Options{
		Seed: seed, Net: simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{expServerOG: servers}
			cfg.PGMP.SuspectPolicy = pgmp.SuspectAdaptive
			cfg.Conn.RequestRetryMax = 320_000_000
			cfg.Conn.RequestRetryJitter = 0.2
			cfg.PGMP.AddResendMax = 160_000_000
			cfg.PGMP.AddResendJitter = 0.2
		},
	}, all...)
	econn := ids.ConnectionID{
		ClientDomain: 1, ClientGroup: expClientOG,
		ServerDomain: 1, ServerGroup: expServerOG,
	}
	infras := make(map[ids.ProcessorID]*ftcorba.Infra)
	ledgers := make(map[ids.ProcessorID]*e15Ledger)
	for _, p := range all {
		h := c.Host(p)
		infra := ftcorba.New(p, 1, h.Node)
		infras[p] = infra
		h.OnDeliver = infra.OnDeliver
		h.OnView = infra.OnViewChange
		switch {
		case servers.Contains(p):
			ledgers[p] = &e15Ledger{pad: newE15Pad(padBytes)}
			infra.Serve(expServerOG, "ledger", ledgers[p])
		case p == 4:
			infra.RegisterObjectKey(expServerOG, "ledger")
		}
	}
	infras[4].Connect(int64(c.Net.Now()), econn, core.DefaultConfig(4).DomainAddr, ids.NewMembership(4))
	if !c.RunUntil(30*simnet.Second, func() bool {
		for _, p := range []ids.ProcessorID{1, 2, 3, 4} {
			if !infras[p].Established(econn) {
				return false
			}
		}
		return true
	}) {
		return res
	}
	if !e13Deposits(c, infras[4], econn, 5) {
		return res
	}
	c.RunFor(simnet.Second)
	g := c.Host(4).Node.ConnectionState(econn).Group

	// The chunk-drop fault targets the sender→joiner link: only packets
	// big enough to be state chunks, only the first six, so the repair
	// path (nack + retransmission) is exercised without starving the
	// stream forever.
	dropsBefore := c.Net.Stats().PacketsDropped
	if scenario == E15ChunkDrop {
		dropped := 0
		c.Net.SetDropFilter(func(from, to simnet.NodeID, data []byte) bool {
			if from == 1 && to == 5 && len(data) > 8*1024 && dropped < 6 {
				dropped++
				return true
			}
			return false
		})
	}
	resumesBefore := trace.Counter("ftcorba.xfer_failovers")

	// Joiner 5 enters through the manual admission path; its OnView
	// wiring makes the designated survivor start the transfer
	// automatically on the admission view.
	joiner := &e15Ledger{}
	infras[5].ServeJoining(expServerOG, "ledger", joiner)
	c.Host(5).Node.ListenGroup(g)
	if err := c.Host(1).Node.RequestAddProcessor(int64(c.Net.Now()), g, 5); err != nil {
		return res
	}
	var admitAt simnet.Time
	if !c.RunUntil(c.Net.Now()+30*simnet.Second, func() bool {
		return c.Host(5).Node.Members(g).Contains(5)
	}) {
		return res
	}
	admitAt = c.Net.Now()

	if scenario == E15SenderKill {
		// Let the stream get going, then kill the designated sender:
		// the next supporter must take over from the acked position.
		if !c.RunUntil(admitAt+30*simnet.Second, func() bool {
			return infras[5].Stats().StateChunksApplied >= 8
		}) {
			return res
		}
		c.Crash(1)
	}

	if !c.RunUntil(admitAt+120*simnet.Second, func() bool {
		return infras[5].Stats().StateTransfers == 1 && !infras[5].Joining(expServerOG)
	}) {
		return res
	}
	res.XferMs = float64(c.Net.Now()-admitAt) / 1e6
	c.Net.SetDropFilter(nil)
	c.RunFor(simnet.Second)

	res.ChunksApplied = infras[5].Stats().StateChunksApplied
	for _, p := range servers {
		res.ChunksSent += infras[p].Stats().StateChunksSent
	}
	res.Resumes = trace.Counter("ftcorba.xfer_failovers") - resumesBefore
	res.Dropped = c.Net.Stats().PacketsDropped - dropsBefore

	// Post-fault traffic must land at the rejoined replica too, and the
	// final states must be byte-identical.
	if !e13Deposits(c, infras[4], econn, 2) {
		return res
	}
	c.RunFor(2 * simnet.Second)
	witness := ids.ProcessorID(2) // survives every scenario
	snapW, errW := ledgers[witness].SnapshotState()
	snapJ, errJ := joiner.SnapshotState()
	res.Converged = errW == nil && errJ == nil && bytes.Equal(snapW, snapJ) &&
		joiner.applied == ledgers[witness].applied
	return res
}

// E15Rejoin runs the three fault scenarios over the streamed-transfer
// rejoin path.
func E15Rejoin(padBytes int) *trace.Table {
	tb := trace.NewTable(
		"E15b: streamed rejoin under transfer faults — resume, never restart; every chunk exactly once",
		"scenario", "xfer ms", "chunks applied", "chunks sent", "failovers", "pkts dropped", "converged")
	for i, scenario := range []string{E15Clean, E15SenderKill, E15ChunkDrop} {
		r := RunE15Rejoin(scenario, padBytes, SeedOffset+1500+int64(i))
		tb.AddRow(r.Scenario, fmt.Sprintf("%.2f", r.XferMs), r.ChunksApplied, r.ChunksSent,
			r.Resumes, r.Dropped, r.Converged)
	}
	return tb
}
