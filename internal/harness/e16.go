package harness

// Experiment E16: kernel-batched transport under open-loop client load.
//
// E14 measures the pipelined datapath with a closed-loop sender: a
// windowed source that slows down whenever the group does, which hides
// syscall cost behind self-pacing. E16 removes that feedback. An
// open-loop generator models N independent clients that together offer
// a fixed aggregate rate R — each message is sent at its scheduled
// instant whether or not earlier ones have been delivered, each client
// owning a distinct virtual ConnectionID (connection-ID virtualization
// over one runner, as a client-scale gateway would do).
//
// Two modes run back to back, both on the pipelined runtime over real
// UDP loopback with fsync=always WALs on three durable replicas:
//
//	unbatched — one sendto/recvfrom kernel crossing per datagram
//	            (every prior experiment's transport behavior).
//	batched   — sendmmsg/recvmmsg vectors: the mesh drains up to
//	            RecvBatch datagrams per syscall, each send shard
//	            coalesces its backlog into one sendmmsg per wakeup.
//
// The interesting columns are achieved msg/s vs offered (does the
// group keep up?), syscalls per delivered message (the batching win,
// measured from the transport's own counters across all three
// replicas) and the delivery-latency percentiles (vectoring must not
// wreck the tail).

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/runtime"
	"ftmp/internal/trace"
	"ftmp/internal/transport"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

// E16Result is one mode's measurement.
type E16Result struct {
	Mode         string
	Clients      int
	Msgs         int
	OfferedRate  float64 // msg/s the generator scheduled
	AchievedRate float64 // msg/s actually delivered at the sender
	Seconds      float64
	P50, P99     float64 // send->deliver latency, milliseconds
	TxSyscalls   uint64  // transport send syscalls, all replicas, measured window
	RxSyscalls   uint64  // transport receive syscalls, all replicas, measured window
	SyscallsMsg  float64 // (tx+rx syscalls) per payload delivery, all replicas
	Sendmmsg     uint64  // vectored send calls (batched mode only)
	Recvmmsg     uint64  // vectored receive calls (batched mode only)
	RxDrops      uint64
	Err          error
}

const (
	e16Group   = ids.GroupID(1600)
	e16Warmup  = 50 // unmeasured messages to settle the group first
	e16Payload = 64 // bytes per message (seq in the first 8)
	e16Vector  = 32 // send/recv vector size in batched mode
)

// RunE16 measures one mode: clients virtual connections offering rate
// msg/s in aggregate until msgs measured messages have been sent.
// batched selects the vectored transport + batch-draining send shards;
// everything else is identical.
func RunE16(batched bool, clients, msgs int, rate float64) E16Result {
	mode := "unbatched"
	if batched {
		mode = "batched"
	}
	res := E16Result{Mode: mode, Clients: clients, Msgs: msgs, OfferedRate: rate}
	fail := func(err error) E16Result { res.Err = err; return res }
	if clients < 1 || rate <= 0 {
		return fail(fmt.Errorf("e16 needs clients >= 1 and rate > 0"))
	}

	trace.ResetCounters()
	const n = 3
	members := ids.NewMembership(1, 2, 3)

	type e16node struct {
		r    *runtime.Runner
		mesh *transport.UDPMesh
		log  *wal.Log
		dir  string
		got  atomic.Int64 // payload messages delivered
	}
	nodes := make([]*e16node, n)

	sendTimes := make([]int64, e16Warmup+msgs)
	var latencies trace.Histogram
	var latMu sync.Mutex
	senderDone := make(chan struct{})
	var senderDoneOnce sync.Once

	defer func() {
		for _, nd := range nodes {
			if nd == nil {
				continue
			}
			if nd.r != nil {
				nd.r.Close()
			}
			if nd.log != nil {
				_ = nd.log.Close()
			}
			if nd.dir != "" {
				_ = os.RemoveAll(nd.dir)
			}
		}
	}()

	total := e16Warmup + msgs
	for i := 0; i < n; i++ {
		nd := &e16node{}
		nodes[i] = nd
		p := ids.ProcessorID(i + 1)

		dir, err := os.MkdirTemp("", fmt.Sprintf("ftmp-e16-%s-p%d-", mode, p))
		if err != nil {
			return fail(err)
		}
		nd.dir = dir
		dfs, err := wal.NewDirFS(dir)
		if err != nil {
			return fail(err)
		}
		nd.log, _, err = wal.Open(wal.Config{
			FS:     dfs,
			Policy: wal.SyncAlways,
			Now:    func() int64 { return time.Now().UnixNano() },
		})
		if err != nil {
			return fail(err)
		}

		cfg := core.DefaultConfig(p)
		cfg.PGMP.SuspectTimeout = 5_000_000_000 // no convictions under load
		cb := core.Callbacks{
			Transmit: func(wire.MulticastAddr, []byte) {}, // installed by the runner
			Deliver: func(d core.Delivery) {
				if len(d.Payload) != e16Payload {
					return
				}
				seq := int64(binary.BigEndian.Uint64(d.Payload))
				if i == 0 && seq >= e16Warmup {
					lat := float64(time.Now().UnixNano()-atomic.LoadInt64(&sendTimes[seq])) / 1e6
					latMu.Lock()
					latencies.Add(lat)
					latMu.Unlock()
				}
				if nd.got.Add(1) == int64(total) && i == 0 {
					senderDoneOnce.Do(func() { close(senderDone) })
				}
			},
		}
		opts := runtime.Options{
			RecvWorkers:   4,
			DeliveryDepth: 1024,
			SendShards:    2,
			WAL:           nd.log,
			WALBatch:      64,
		}
		if batched {
			opts.SendBatch = e16Vector
		}
		nd.r, err = runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
			var mcfg transport.MeshConfig
			if batched {
				mcfg = transport.MeshConfig{RecvBatch: e16Vector, SendBatch: e16Vector}
			}
			m, err := transport.NewUDPMeshConfig("127.0.0.1:0", h, mcfg)
			nd.mesh = m
			return m, err
		}, opts)
		if err != nil {
			return fail(err)
		}
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if err := a.mesh.AddPeer(b.mesh.LocalAddr()); err != nil {
				return fail(err)
			}
		}
	}
	for _, nd := range nodes {
		nd.r.Do(func(node *core.Node, now int64) {
			node.CreateGroup(now, e16Group, members)
		})
	}

	// The generator: seq c (mod clients) belongs to virtual client c,
	// which carries its own ConnectionID and per-connection request
	// counter, so the group sees N interleaved client conversations.
	sender := nodes[0]
	reqNums := make([]ids.RequestNum, clients)
	send := func(seq int) error {
		c := seq % clients
		conn := ids.ConnectionID{
			ClientDomain: ids.DomainID(100 + c),
			ClientGroup:  ids.ObjectGroupID(c + 1),
			ServerDomain: 1,
			ServerGroup:  1,
		}
		reqNums[c]++
		payload := make([]byte, e16Payload)
		binary.BigEndian.PutUint64(payload, uint64(seq))
		var err error
		atomic.StoreInt64(&sendTimes[seq], time.Now().UnixNano())
		sender.r.Do(func(node *core.Node, now int64) {
			err = node.Multicast(now, e16Group, conn, reqNums[c], payload)
		})
		return err
	}

	// Warmup is closed-loop: settle membership and warm the path.
	for seq := 0; seq < e16Warmup; seq++ {
		if err := send(seq); err != nil {
			return fail(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for sender.got.Load() < e16Warmup {
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("warmup never delivered (%d/%d)", sender.got.Load(), e16Warmup))
		}
		time.Sleep(time.Millisecond)
	}

	// Snapshot the syscall counters so the measured window excludes
	// setup and warmup traffic.
	txBefore := trace.Counter("transport.tx_syscalls")
	rxBefore := trace.Counter("transport.rx_syscalls")
	gotBefore := int64(0)
	for _, nd := range nodes {
		gotBefore += nd.got.Load()
	}

	// Open loop: message k is sent at start + k/rate, regardless of how
	// far delivery has fallen behind. A send rejected by the core (e.g.
	// transient group gating) is retried on a tight schedule — dropping
	// it would deadlock completion accounting — but the clock never
	// stops, so sustained rejection shows up as achieved < offered.
	start := time.Now()
	interval := time.Duration(float64(time.Second) / rate)
	for k := 0; k < msgs; k++ {
		due := start.Add(time.Duration(k) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		for send(e16Warmup+k) != nil {
			time.Sleep(100 * time.Microsecond)
		}
	}
	select {
	case <-senderDone:
	case <-time.After(120 * time.Second):
		return fail(fmt.Errorf("measured stream never completed (%d/%d)", sender.got.Load(), int64(total)))
	}
	elapsed := time.Since(start)

	// Let the other replicas finish before reading their counters.
	deadline = time.Now().Add(30 * time.Second)
	for nodes[1].got.Load() < int64(total) || nodes[2].got.Load() < int64(total) {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	res.TxSyscalls = trace.Counter("transport.tx_syscalls") - txBefore
	res.RxSyscalls = trace.Counter("transport.rx_syscalls") - rxBefore
	gotAfter := int64(0)
	for _, nd := range nodes {
		gotAfter += nd.got.Load()
	}
	for _, nd := range nodes {
		if err := nd.r.WALSync(); err != nil {
			return fail(err)
		}
		nd.r.Close()
	}

	res.Seconds = elapsed.Seconds()
	res.AchievedRate = float64(msgs) / res.Seconds
	if dg := gotAfter - gotBefore; dg > 0 {
		res.SyscallsMsg = float64(res.TxSyscalls+res.RxSyscalls) / float64(dg)
	}
	res.Sendmmsg = trace.Counter("transport.tx_sendmmsg_calls")
	res.Recvmmsg = trace.Counter("transport.rx_recvmmsg_calls")
	res.RxDrops = trace.Counter("runtime.rx_overflow_drops")
	res.P50 = latencies.P50()
	res.P99 = latencies.P99()
	return res
}

// E16Batching regenerates experiment E16: both transport modes under
// the same open-loop offered load, with the batched row reporting its
// syscall amortization and throughput against the unbatched row.
func E16Batching(clients, msgs int, rate float64) *trace.Table {
	tb := trace.NewTable(
		fmt.Sprintf("E16: batched (sendmmsg/recvmmsg) vs unbatched transport, open-loop %d clients @ %.0f msg/s offered (3 durable replicas, UDP loopback, fsync=always)", clients, rate),
		"mode", "msgs", "offered/s", "achieved/s", "p50 ms", "p99 ms",
		"tx syscalls", "rx syscalls", "syscalls/msg", "sendmmsg", "recvmmsg", "rx drops", "syscall ratio")
	un := RunE16(false, clients, msgs, rate)
	ba := RunE16(true, clients, msgs, rate)
	row := func(r E16Result, ratio float64) {
		if r.Err != nil {
			tb.AddRow(r.Mode, r.Msgs, "FAILED: "+r.Err.Error(), "-", "-", "-", "-", "-", "-", "-", "-", "-", "-")
			return
		}
		tb.AddRow(r.Mode, r.Msgs,
			fmt.Sprintf("%.0f", r.OfferedRate),
			fmt.Sprintf("%.0f", r.AchievedRate),
			fmt.Sprintf("%.2f", r.P50),
			fmt.Sprintf("%.2f", r.P99),
			r.TxSyscalls, r.RxSyscalls,
			fmt.Sprintf("%.2f", r.SyscallsMsg),
			r.Sendmmsg, r.Recvmmsg, r.RxDrops,
			fmt.Sprintf("%.2fx", ratio))
	}
	row(un, 1.0)
	ratio := 0.0
	if un.Err == nil && ba.Err == nil && ba.SyscallsMsg > 0 {
		ratio = un.SyscallsMsg / ba.SyscallsMsg
	}
	row(ba, ratio)
	return tb
}
