package harness

// Experiment E11: the durability cost model of the write-ahead log.
//
// The paper's protocol tolerates processor crashes by regenerating
// state from the survivors; this repository additionally makes each
// processor individually durable (internal/wal), which buys whole-group
// crash recovery at the price of synchronous disk writes. E11 puts a
// number on that price: append throughput under the three fsync
// policies (always / interval / never), and the recovery-side cost —
// how long a restart spends scanning and verifying the log — as a
// function of log size.
//
// Unlike E1–E10 this experiment runs against the real filesystem (a
// temporary directory), because the quantity of interest is fsync and
// read-back cost, not protocol behaviour: numbers vary with the
// machine, but the *ratios* between policies are the result.

import (
	"fmt"
	"os"
	"time"

	"ftmp/internal/ids"
	"ftmp/internal/trace"
	"ftmp/internal/wal"
)

// e11Record builds the i-th synthetic op record with a payload of the
// given size — shaped like a logged GIOP request.
func e11Record(i int, payload int) wal.Record {
	return wal.Record{Type: wal.RecOp, Op: &wal.OpRecord{
		Conn:    ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20},
		ReqNum:  ids.RequestNum(i + 1),
		Request: true,
		TS:      ids.MakeTimestamp(uint64(i+1), 1),
		Payload: make([]byte, payload),
	}}
}

// E11AppendResult is one append-side measurement.
type E11AppendResult struct {
	Policy    wal.Policy
	Records   int
	Seconds   float64
	RecsPerS  float64
	Fsyncs    uint64
	MeanUs    float64 // mean per-append latency
	LogBytes  uint64
	Truncated bool
}

// RunE11Append writes n records of the given payload size to a fresh
// log under dir and measures wall-clock append cost.
func RunE11Append(policy wal.Policy, n, payload int, dir string) (E11AppendResult, error) {
	dfs, err := wal.NewDirFS(dir)
	if err != nil {
		return E11AppendResult{}, err
	}
	fsyncs0 := trace.Counter("wal.fsyncs")
	bytes0 := trace.Counter("wal.bytes")
	w, _, err := wal.Open(wal.Config{
		FS:     dfs,
		Policy: policy,
		Now:    func() int64 { return time.Now().UnixNano() },
	})
	if err != nil {
		return E11AppendResult{}, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := w.Append(e11Record(i, payload)); err != nil {
			return E11AppendResult{}, err
		}
	}
	if err := w.Sync(); err != nil { // a fair finish line for every policy
		return E11AppendResult{}, err
	}
	dur := time.Since(start)
	if err := w.Close(); err != nil {
		return E11AppendResult{}, err
	}
	secs := dur.Seconds()
	return E11AppendResult{
		Policy:   policy,
		Records:  n,
		Seconds:  secs,
		RecsPerS: float64(n) / secs,
		Fsyncs:   trace.Counter("wal.fsyncs") - fsyncs0,
		MeanUs:   float64(dur.Microseconds()) / float64(n),
		LogBytes: trace.Counter("wal.bytes") - bytes0,
	}, nil
}

// RunE11Recover reopens the log under dir (written by RunE11Append) and
// measures how long recovery — scanning, checksumming and decoding
// every record — takes.
func RunE11Recover(dir string) (ms float64, records int, err error) {
	dfs, err := wal.NewDirFS(dir)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	w, rec, err := wal.Open(wal.Config{FS: dfs, Policy: wal.SyncNever})
	if err != nil {
		return 0, 0, err
	}
	dur := time.Since(start)
	_ = w.Close()
	return float64(dur.Nanoseconds()) / 1e6, len(rec.Records), nil
}

// E11Durability measures append throughput per fsync policy at the
// first log size, then recovery time at every given log size (records
// of payloadBytes each, written under fsync=never so the log content is
// identical across sizes).
func E11Durability(sizes []int, payloadBytes int) *trace.Table {
	tb := trace.NewTable(
		"E11: WAL durability cost — fsync policy vs append throughput, recovery time vs log size",
		"mode", "policy", "records", "recs/s", "mean us/rec", "fsyncs", "log MB", "recover ms")
	if len(sizes) == 0 {
		return tb
	}
	for _, policy := range []wal.Policy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		dir, err := os.MkdirTemp("", "ftmp-e11-*")
		if err != nil {
			tb.AddRow("append", policy, 0, fmt.Sprintf("error: %v", err), "", "", "", "")
			continue
		}
		r, err := RunE11Append(policy, sizes[0], payloadBytes, dir)
		if err != nil {
			tb.AddRow("append", policy, sizes[0], fmt.Sprintf("error: %v", err), "", "", "", "")
			os.RemoveAll(dir)
			continue
		}
		tb.AddRow("append", policy, r.Records,
			fmt.Sprintf("%.0f", r.RecsPerS), fmt.Sprintf("%.1f", r.MeanUs),
			r.Fsyncs, fmt.Sprintf("%.2f", float64(r.LogBytes)/1e6), "-")
		os.RemoveAll(dir)
	}
	for _, n := range sizes {
		dir, err := os.MkdirTemp("", "ftmp-e11-*")
		if err != nil {
			tb.AddRow("recover", "-", n, "", "", "", "", fmt.Sprintf("error: %v", err))
			continue
		}
		r, err := RunE11Append(wal.SyncNever, n, payloadBytes, dir)
		if err == nil {
			var ms float64
			var got int
			ms, got, err = RunE11Recover(dir)
			if err == nil && got != n {
				err = fmt.Errorf("recovered %d of %d records", got, n)
			}
			if err == nil {
				tb.AddRow("recover", "-", n, "-", "-", "-",
					fmt.Sprintf("%.2f", float64(r.LogBytes)/1e6), fmt.Sprintf("%.2f", ms))
			}
		}
		if err != nil {
			tb.AddRow("recover", "-", n, "", "", "", "", fmt.Sprintf("error: %v", err))
		}
		os.RemoveAll(dir)
	}
	return tb
}
