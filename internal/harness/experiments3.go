package harness

// Experiment E10: the automated crash-recovery pipeline end to end.
//
// The paper's recovery story (sections 3 and 7) ends at the new
// membership; this repository adds the rest of the pipeline — adaptive
// failure detection, backoff-paced rejoin probing, auto-readmission and
// automatic state transfer — and E10 measures it: how long from the
// crash until (a) the survivors convict the dead replica, (b) a
// replacement processor is readmitted, and (c) the replacement has its
// state snapshot and is serving, as a function of request load and of
// the suspect policy (fixed timeout vs adaptive mean + k·stddev).
//
// A companion zero-fault run on a jittery network (bounded uniform
// latency jitter far above the LAN defaults) counts false convictions:
// the fixed 50ms detector convicts healthy members whose silence
// occasionally exceeds its timeout, while the adaptive detector widens
// its per-member threshold past the jitter bound and convicts no one.

import (
	"fmt"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/pgmp"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
)

// ledger is the E10 stateful servant: it accumulates deposits, so a
// rejoining replica can only catch up through a state transfer.
type ledger struct {
	total   int64
	applied int64
}

func (l *ledger) Invoke(op string, args []byte) ([]byte, *orb.Exception) {
	d := giop.NewDecoder(args, false)
	v := d.LongLong()
	if d.Err() != nil || op != "add" {
		return nil, orb.ExcBadOperation
	}
	l.total += v
	l.applied++
	e := giop.NewEncoder(false)
	e.LongLong(l.total)
	return e.Bytes(), nil
}

func (l *ledger) SnapshotState() ([]byte, error) {
	e := giop.NewEncoder(false)
	e.LongLong(l.total)
	e.LongLong(l.applied)
	return e.Bytes(), nil
}

func (l *ledger) RestoreState(b []byte) error {
	d := giop.NewDecoder(b, false)
	l.total = d.LongLong()
	l.applied = d.LongLong()
	return d.Err()
}

func e10Amount(v int64) []byte {
	e := giop.NewEncoder(false)
	e.LongLong(v)
	return e.Bytes()
}

// E10Result is one recovery measurement, all times relative to the
// crash instant.
type E10Result struct {
	Policy    string
	CallGapMs float64
	ConvictMs float64 // crash -> survivor 1 convicts the dead replica
	ReadmitMs float64 // crash -> replacement admitted to the group
	CatchupMs float64 // crash -> replacement restored state and serving
	Probes    int     // ConnectRequest transmissions by the replacement
}

// RunE10Recovery crashes one of three server replicas under a steady
// client request stream (one call every callGap) and drives the full
// automated pipeline: 30ms after the crash — typically before the
// survivors have convicted it — a replacement processor starts probing
// for readmission with Rejoin; the designated survivor readmits it and
// transfers state while the stream keeps running.
func RunE10Recovery(adaptive bool, callGap simnet.Time, seed int64) E10Result {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)
	all := []ids.ProcessorID{1, 2, 3, 4}
	c := NewCluster(Options{
		Seed: seed, Net: simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{expServerOG: servers}
			if adaptive {
				cfg.PGMP.SuspectPolicy = pgmp.SuspectAdaptive
			}
			cfg.Conn.RequestRetryMax = 320_000_000 // rejoin probes back off 20ms -> 320ms
			cfg.Conn.RequestRetryJitter = 0.2
			cfg.PGMP.AddResendMax = 160_000_000
			cfg.PGMP.AddResendJitter = 0.2
		},
	}, all...)
	econn := ids.ConnectionID{
		ClientDomain: 1, ClientGroup: expClientOG,
		ServerDomain: 1, ServerGroup: expServerOG,
	}
	infras := make(map[ids.ProcessorID]*ftcorba.Infra)
	attach := func(p ids.ProcessorID) *ftcorba.Infra {
		h := c.Host(p)
		infra := ftcorba.New(p, 1, h.Node)
		infras[p] = infra
		h.OnDeliver = infra.OnDeliver
		h.OnView = infra.OnViewChange
		return infra
	}
	for _, p := range all {
		infra := attach(p)
		if servers.Contains(p) {
			infra.Serve(expServerOG, "ledger", &ledger{})
		} else {
			infra.RegisterObjectKey(expServerOG, "ledger")
		}
	}
	addr := core.DefaultConfig(4).DomainAddr
	infras[4].Connect(int64(c.Net.Now()), econn, addr, clients)
	if !c.RunUntil(c.Net.Now()+30*simnet.Second, func() bool {
		for _, p := range all {
			if !infras[p].Established(econn) {
				return false
			}
		}
		return true
	}) {
		panic("E10: connection not established")
	}

	// Steady client load through the whole scenario.
	stopped := false
	var issue func(i int)
	issue = func(i int) {
		if stopped {
			return
		}
		_ = infras[4].Call(int64(c.Net.Now()), econn, "add", e10Amount(int64(i+1)), func([]byte, error) {})
		c.Net.At(c.Net.Now()+callGap, func() { issue(i + 1) })
	}
	c.Net.At(c.Net.Now(), func() { issue(0) })

	// Warm up: the adaptive detector accrues inter-arrival history.
	c.RunFor(100 * simnet.Millisecond)
	crashAt := c.Net.Now()
	c.Crash(3)

	readmitAt := int64(-1)
	h1 := c.Host(1)
	innerView := h1.OnView
	h1.OnView = func(v core.ViewChange, now int64) {
		innerView(v, now)
		if readmitAt < 0 && v.Joined.Contains(5) {
			readmitAt = now
		}
	}
	var infra5 *ftcorba.Infra
	c.Net.At(crashAt+30*simnet.Millisecond, func() {
		c.AddHost(5)
		infra5 = attach(5)
		infra5.Rejoin(int64(c.Net.Now()), econn, expServerOG, "ledger", &ledger{}, addr)
	})
	catchupAt := simnet.Time(0)
	recovered := c.RunUntil(crashAt+60*simnet.Second, func() bool {
		return infra5 != nil && infra5.Stats().StateTransfers >= 1 && !infra5.Joining(expServerOG)
	})
	if recovered {
		catchupAt = c.Net.Now()
	}
	stopped = true

	convictAt := int64(-1)
	for _, f := range h1.Faults {
		if f.Convicted.Contains(3) && f.At >= int64(crashAt) {
			convictAt = f.At
			break
		}
	}
	policy := "fixed"
	if adaptive {
		policy = "adaptive"
	}
	ms := func(at, since int64) float64 {
		if at < since {
			return -1 // stage never observed
		}
		return float64(at-since) / 1e6
	}
	return E10Result{
		Policy:    policy,
		CallGapMs: float64(callGap) / 1e6,
		ConvictMs: ms(convictAt, int64(crashAt)),
		ReadmitMs: ms(readmitAt, int64(crashAt)),
		CatchupMs: ms(int64(catchupAt), int64(crashAt)),
		Probes:    c.Host(5).Node.ConnectAttempts(econn),
	}
}

// RunE10FalseConvictions runs a healthy 4-member group on a jittery
// network (heartbeats every 20ms, uniform delivery jitter up to 40ms)
// with zero faults injected, and returns how many distinct processors
// were convicted anyway. The adaptive run keeps SuspectTimeout at 100ms
// as its bootstrap threshold (used until per-member history accrues);
// the fixed run uses the default 50ms the LAN configuration assumes.
func RunE10FalseConvictions(adaptive bool, dur simnet.Time, seed int64) int {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	netCfg := simnet.NewConfig()
	netCfg.LatencyJitter = 40 * simnet.Millisecond
	c := NewCluster(Options{
		Seed: seed, Net: netCfg,
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.HeartbeatInterval = int64(20 * simnet.Millisecond)
			if adaptive {
				cfg.PGMP.SuspectPolicy = pgmp.SuspectAdaptive
				cfg.PGMP.SuspectTimeout = int64(100 * simnet.Millisecond)
			}
		},
	}, procs...)
	c.CreateGroup(expGroup, ids.NewMembership(procs...))
	c.RunFor(dur)
	var convicted ids.Membership
	for _, p := range procs {
		for _, f := range c.Host(p).Faults {
			for _, v := range f.Convicted {
				convicted = convicted.Add(v)
			}
		}
	}
	return len(convicted)
}

// E10Recovery regenerates experiment E10: time to recovery versus load
// and suspect policy, with the jittery zero-fault false-conviction
// comparison folded into the title.
func E10Recovery(gaps []simnet.Time, fcDur simnet.Time) *trace.Table {
	fixedFC := RunE10FalseConvictions(false, fcDur, SeedOffset+1000)
	adaptFC := RunE10FalseConvictions(true, fcDur, SeedOffset+1000)
	title := fmt.Sprintf(
		"E10: crash -> conviction -> readmit -> caught up, vs load and suspect policy\n"+
			"     zero-fault run with 40ms jitter over %.0fs: false convictions fixed=%d adaptive=%d",
		float64(fcDur)/float64(simnet.Second), fixedFC, adaptFC)
	tb := trace.NewTable(title,
		"policy", "call gap ms", "convict ms", "readmit ms", "caught up ms", "probes")
	row := 0
	for _, gap := range gaps {
		for _, adaptive := range []bool{false, true} {
			r := RunE10Recovery(adaptive, gap, SeedOffset+1010+int64(row))
			tb.AddRow(r.Policy, r.CallGapMs, r.ConvictMs, r.ReadmitMs, r.CatchupMs, r.Probes)
			row++
		}
	}
	return tb
}
