package harness

import (
	"fmt"

	"ftmp/internal/clock"
	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// E5Result is one buffer-management sample (paper section 6: ROMP
// reclaims buffers once every member's ack timestamp passes a message).
type E5Result struct {
	HeartbeatMs   float64
	PeakBuffered  int
	FinalBuffered int
}

// RunE5Buffer streams messages through a 4-member group and tracks RMP
// buffer occupancy at a receiver. Heartbeats carry ack timestamps during
// idle periods, so a short heartbeat interval drains buffers promptly;
// with heartbeats effectively disabled the buffers drain only while
// application traffic piggybacks acks, and stall afterwards.
func RunE5Buffer(hb simnet.Time, seed int64) E5Result {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := NewCluster(Options{
		Seed: seed, Net: simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.HeartbeatInterval = int64(hb)
			// Fault detection off: the sweep includes heartbeat
			// intervals long enough that silent members would otherwise
			// be convicted, which is E4's subject, not E5's.
			cfg.PGMP.SuspectTimeout = 1 << 60
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(expGroup, m)
	c.RunFor(50 * simnet.Millisecond)

	const msgs = 500
	var send func(i int)
	send = func(i int) {
		if i >= msgs {
			return
		}
		_ = c.Host(1).Node.Multicast(int64(c.Net.Now()), expGroup, ids.ConnectionID{}, 0, payload(i, 256))
		c.Net.At(c.Net.Now()+simnet.Millisecond, func() { send(i + 1) })
	}
	c.Net.At(c.Net.Now(), func() { send(0) })

	peak := 0
	var sample func()
	sample = func() {
		held, pending := c.Host(2).Node.Buffered(expGroup)
		if held+pending > peak {
			peak = held + pending
		}
		c.Net.At(c.Net.Now()+simnet.Millisecond, sample)
	}
	c.Net.At(c.Net.Now(), sample)

	// Run well past the stream end so reclamation can happen.
	c.RunFor(simnet.Time(msgs)*simnet.Millisecond + 2*simnet.Second)
	held, pending := c.Host(2).Node.Buffered(expGroup)
	return E5Result{
		HeartbeatMs:   float64(hb) / 1e6,
		PeakBuffered:  peak,
		FinalBuffered: held + pending,
	}
}

// E5Buffer regenerates experiment E5: ack-timestamp-driven buffer
// reclamation versus heartbeat interval.
func E5Buffer(intervals []simnet.Time) *trace.Table {
	tb := trace.NewTable(
		"E5: buffer occupancy vs heartbeat interval (paper sections 3.2, 6)",
		"hb ms", "peak buffered", "buffered 2s after stream")
	for i, hb := range intervals {
		r := RunE5Buffer(hb, SeedOffset+500+int64(i))
		tb.AddRow(r.HeartbeatMs, r.PeakBuffered, r.FinalBuffered)
	}
	return tb
}

// E6Result is one loss-rate sample for RMP's NACK repair.
type E6Result struct {
	LossPct     float64
	CompleteMs  float64
	Nacks       uint64
	Retrans     uint64
	Duplicates  uint64
	GoodputMsgS float64
}

// RunE6Loss streams messages under loss and reports repair effort.
func RunE6Loss(loss float64, seed int64) E6Result {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	netCfg := simnet.NewConfig()
	netCfg.LossRate = loss
	c := NewCluster(Options{Seed: seed, Net: netCfg}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(expGroup, m)
	delivered := make(map[ids.ProcessorID]int)
	for _, p := range procs {
		p := p
		c.Host(p).OnDeliver = func(core.Delivery, int64) { delivered[p]++ }
	}
	c.RunFor(100 * simnet.Millisecond)
	const msgs, per = 400, 100
	start := c.Net.Now()
	for pi, p := range procs {
		p, pi := p, pi
		var send func(i int)
		send = func(i int) {
			if i >= per {
				return
			}
			_ = c.Host(p).Node.Multicast(int64(c.Net.Now()), expGroup, ids.ConnectionID{}, 0, payload(pi*per+i, 256))
			c.Net.At(c.Net.Now()+simnet.Millisecond, func() { send(i + 1) })
		}
		c.Net.At(start, func() { send(0) })
	}
	c.RunUntil(start+120*simnet.Second, func() bool {
		for _, p := range procs {
			if delivered[p] < msgs {
				return false
			}
		}
		return true
	})
	dur := c.Net.Now() - start
	var nacks, retrans, dups uint64
	for _, p := range procs {
		st := c.Host(p).Node.Stats()
		nacks += st.RMP.NacksSent
		retrans += st.RMP.Retransmissions
		dups += st.RMP.Duplicates
	}
	return E6Result{
		LossPct:     loss * 100,
		CompleteMs:  float64(dur) / 1e6,
		Nacks:       nacks,
		Retrans:     retrans,
		Duplicates:  dups,
		GoodputMsgS: float64(msgs) / (float64(dur) / float64(simnet.Second)),
	}
}

// E6Loss regenerates experiment E6: RMP repair under packet loss.
func E6Loss(rates []float64) *trace.Table {
	tb := trace.NewTable(
		"E6: RMP negative-acknowledgment repair vs loss rate (paper section 5)",
		"loss %", "complete ms", "nacks", "retransmissions", "dup drops", "goodput msg/s")
	for i, r := range rates {
		res := RunE6Loss(r, SeedOffset+600+int64(i))
		tb.AddRow(res.LossPct, res.CompleteMs, res.Nacks, res.Retrans, res.Duplicates, res.GoodputMsgS)
	}
	return tb
}

// giopWorld is the E7/E8 fixture: server replicas, client replicas, and
// the wiring between their FTMP nodes and infrastructures.
type giopWorld struct {
	c       *Cluster
	infras  map[ids.ProcessorID]*ftcorba.Infra
	conn    ids.ConnectionID
	servers ids.Membership
	clients ids.Membership
}

const (
	expClientOG = ids.ObjectGroupID(8010)
	expServerOG = ids.ObjectGroupID(8020)
)

// echoServant returns its argument: the minimal deterministic servant.
type echoServant struct{ calls int }

func (e *echoServant) Invoke(op string, args []byte) ([]byte, *orb.Exception) {
	e.calls++
	return args, nil
}

func newGIOPWorld(seed int64, nServers, nClients int, netCfg simnet.Config) *giopWorld {
	var servers, clients ids.Membership
	var all []ids.ProcessorID
	for i := 1; i <= nServers; i++ {
		servers = servers.Add(ids.ProcessorID(i))
		all = append(all, ids.ProcessorID(i))
	}
	for i := nServers + 1; i <= nServers+nClients; i++ {
		clients = clients.Add(ids.ProcessorID(i))
		all = append(all, ids.ProcessorID(i))
	}
	c := NewCluster(Options{
		Seed: seed, Net: netCfg,
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{expServerOG: servers}
		},
	}, all...)
	w := &giopWorld{
		c:       c,
		infras:  make(map[ids.ProcessorID]*ftcorba.Infra),
		servers: servers,
		clients: clients,
		conn: ids.ConnectionID{
			ClientDomain: 1, ClientGroup: expClientOG,
			ServerDomain: 1, ServerGroup: expServerOG,
		},
	}
	for _, p := range all {
		h := c.Host(p)
		infra := ftcorba.New(p, 1, h.Node)
		w.infras[p] = infra
		h.OnDeliver = infra.OnDeliver
		if servers.Contains(p) {
			infra.Serve(expServerOG, "echo", &echoServant{})
		} else {
			infra.RegisterObjectKey(expServerOG, "echo")
		}
	}
	return w
}

func (w *giopWorld) establish() bool {
	addr := core.DefaultConfig(1).DomainAddr
	for _, p := range w.clients {
		w.infras[p].Connect(int64(w.c.Net.Now()), w.conn, addr, w.clients)
	}
	return w.c.RunUntil(w.c.Net.Now()+30*simnet.Second, func() bool {
		for _, p := range w.clients {
			if !w.infras[p].Established(w.conn) {
				return false
			}
		}
		for _, p := range w.servers {
			if !w.infras[p].Established(w.conn) {
				return false
			}
		}
		return true
	})
}

// RunE7GIOP measures replicated GIOP request/reply round-trip latency
// with k server replicas, sequential closed-loop calls from one client.
func RunE7GIOP(k int, calls int, seed int64) *trace.Histogram {
	w := newGIOPWorld(seed, k, 1, simnet.NewConfig())
	if !w.establish() {
		panic(fmt.Sprintf("E7: connection not established (k=%d)", k))
	}
	client := w.infras[w.clients[0]]
	hist := &trace.Histogram{}
	done := 0
	var issue func(i int)
	issue = func(i int) {
		if i >= calls {
			return
		}
		sentAt := int64(w.c.Net.Now())
		err := client.Call(sentAt, w.conn, "echo", payload(i, 128), func([]byte, error) {
			hist.AddNs(int64(w.c.Net.Now()) - sentAt)
			done++
			// Decorrelate successive calls from the heartbeat grid
			// (completion is heartbeat-aligned; reissuing immediately
			// would phase-lock every sample).
			gap := simnet.Time(i%13+1) * 731 * simnet.Microsecond
			w.c.Net.At(w.c.Net.Now()+gap, func() { issue(i + 1) })
		})
		if err != nil {
			panic(err)
		}
	}
	w.c.Net.At(w.c.Net.Now(), func() { issue(0) })
	w.c.RunUntil(w.c.Net.Now()+simnet.Time(calls)*simnet.Second, func() bool { return done == calls })
	return hist
}

// RunE7Direct measures the unreplicated floor: a raw request/reply over
// the same simulated network with no ordering protocol (what a
// point-to-point IIOP exchange costs in this world).
func RunE7Direct(calls int, seed int64) *trace.Histogram {
	net := simnet.New(seed, simnet.NewConfig())
	hist := &trace.Histogram{}
	const (
		cliAddr = simnet.Addr(1)
		srvAddr = simnet.Addr(2)
	)
	var sentAt int64
	done := 0
	// Server echoes.
	net.AddNode(1, simnet.EndpointFunc{
		OnPacket: func(data []byte, _ simnet.Addr, now int64) {
			net.Send(1, cliAddr, data)
		},
	}, 0)
	var issue func(i int)
	net.AddNode(2, simnet.EndpointFunc{
		OnPacket: func(data []byte, _ simnet.Addr, now int64) {
			hist.AddNs(now - sentAt)
			done++
			issue(done)
		},
	}, 0)
	net.Subscribe(1, srvAddr)
	net.Subscribe(2, cliAddr)
	issue = func(i int) {
		if i >= calls {
			return
		}
		sentAt = int64(net.Now())
		net.Send(2, srvAddr, payload(i, 128))
	}
	net.At(0, func() { issue(0) })
	net.RunUntil(simnet.Time(calls)*simnet.Second, func() bool { return done == calls })
	return hist
}

// E7GIOP regenerates experiment E7: replicated invocation latency versus
// replication degree, against the unreplicated point-to-point floor.
func E7GIOP(replicas []int, calls int) *trace.Table {
	tb := trace.NewTable(
		"E7: GIOP request/reply round trip vs replication degree",
		"mode", "mean ms", "p50 ms", "p99 ms")
	d := RunE7Direct(calls, SeedOffset+700)
	tb.AddRow("direct (no replication)", trace.Ms(d.Mean()), trace.Ms(d.Percentile(50)), trace.Ms(d.Percentile(99)))
	for i, k := range replicas {
		h := RunE7GIOP(k, calls, SeedOffset+710+int64(i))
		tb.AddRow(fmt.Sprintf("ftmp k=%d", k), trace.Ms(h.Mean()), trace.Ms(h.Percentile(50)), trace.Ms(h.Percentile(99)))
	}
	return tb
}

// E8Result aggregates duplicate-suppression counters.
type E8Result struct {
	Calls              int
	RequestsSent       uint64
	RequestsDispatched uint64
	DuplicateRequests  uint64
	RepliesSent        uint64
	RepliesDelivered   uint64
	DuplicateReplies   uint64
}

// RunE8Duplicates drives replicated clients against replicated servers:
// every request is multicast by each client replica and every reply by
// each server replica; the (connection id, request number) filter must
// collapse them to exactly-once semantics (paper section 4).
func RunE8Duplicates(nServers, nClients, calls int, seed int64) E8Result {
	w := newGIOPWorld(seed, nServers, nClients, simnet.NewConfig())
	if !w.establish() {
		panic("E8: connection not established")
	}
	done := make(map[ids.ProcessorID]int)
	var issue func(p ids.ProcessorID, i int)
	issue = func(p ids.ProcessorID, i int) {
		if i >= calls {
			return
		}
		err := w.infras[p].Call(int64(w.c.Net.Now()), w.conn, "echo", payload(i, 64), func([]byte, error) {
			done[p]++
			w.c.Net.At(w.c.Net.Now(), func() { issue(p, i+1) })
		})
		if err != nil {
			panic(err)
		}
	}
	for _, p := range w.clients {
		p := p
		w.c.Net.At(w.c.Net.Now(), func() { issue(p, 0) })
	}
	w.c.RunUntil(w.c.Net.Now()+simnet.Time(calls)*simnet.Second, func() bool {
		for _, p := range w.clients {
			if done[p] < calls {
				return false
			}
		}
		return true
	})
	w.c.RunFor(2 * simnet.Second) // drain trailing duplicates
	var out E8Result
	out.Calls = calls
	for _, p := range w.c.Procs() {
		st := w.infras[p].Stats()
		out.RequestsSent += st.RequestsSent
		out.RequestsDispatched += st.RequestsDispatched
		out.DuplicateRequests += st.DuplicateRequests
		out.RepliesSent += st.RepliesSent
		out.RepliesDelivered += st.RepliesDelivered
		out.DuplicateReplies += st.DuplicateReplies
	}
	return out
}

// E8Duplicates regenerates experiment E8.
func E8Duplicates(calls int) *trace.Table {
	tb := trace.NewTable(
		"E8: duplicate detection via (connection id, request number) — 3 server x 3 client replicas",
		"metric", "count")
	r := RunE8Duplicates(3, 3, calls, SeedOffset+800)
	tb.AddRow("logical calls per client", r.Calls)
	tb.AddRow("requests multicast (all client replicas)", r.RequestsSent)
	tb.AddRow("requests dispatched to servants", r.RequestsDispatched)
	tb.AddRow("duplicate requests suppressed", r.DuplicateRequests)
	tb.AddRow("replies multicast (all server replicas)", r.RepliesSent)
	tb.AddRow("replies delivered to callers", r.RepliesDelivered)
	tb.AddRow("duplicate replies suppressed", r.DuplicateReplies)
	return tb
}

// E9Result captures latency around a planned membership change.
type E9Result struct {
	BeforeMeanMs float64
	DuringMeanMs float64
	AfterMeanMs  float64
	DuringMaxMs  float64
}

// RunE9PlannedChange streams messages while a member is added and
// another removed, measuring delivery latency in the three phases
// (paper section 7.1: ordering continues unaffected).
func RunE9PlannedChange(seed int64) E9Result {
	procs := []ids.ProcessorID{1, 2, 3, 4, 5}
	c := NewCluster(Options{Seed: seed, Net: simnet.NewConfig()}, procs...)
	initial := ids.NewMembership(1, 2, 3, 4)
	c.CreateGroup(expGroup, initial)
	type phase int
	sendPhase := make(map[int]phase)
	var before, during, after trace.Histogram
	sendTimes := make(map[int]int64)
	counts := make(map[int]int)
	// The membership varies across the run ({1,2,3,4} -> +5 -> -2), so a
	// message counts as delivered when the three processors that are
	// members throughout ({1,3,4}) have all delivered it.
	needed := func(int) int { return 3 }
	record := func(i int, now int64) {
		counts[i]++
		if counts[i] != needed(i) {
			return
		}
		lat := float64(now - sendTimes[i])
		switch sendPhase[i] {
		case 0:
			before.Add(lat)
		case 1:
			during.Add(lat)
		default:
			after.Add(lat)
		}
	}
	for _, p := range procs {
		c.Host(p).OnDeliver = func(d core.Delivery, now int64) {
			if i := payloadIndex(d.Payload); i >= 0 {
				record(i, now)
			}
		}
	}
	c.RunFor(100 * simnet.Millisecond)
	start := c.Net.Now()
	const msgs = 90
	var send func(i int)
	send = func(i int) {
		if i >= msgs {
			return
		}
		now := int64(c.Net.Now())
		sendTimes[i] = now
		switch {
		case i < 30:
			sendPhase[i] = 0
		case i < 60:
			sendPhase[i] = 1
		default:
			sendPhase[i] = 2
		}
		_ = c.Host(1).Node.Multicast(now, expGroup, ids.ConnectionID{}, 0, payload(i, 64))
		c.Net.At(c.Net.Now()+2*simnet.Millisecond, func() { send(i + 1) })
	}
	c.Net.At(start, func() { send(0) })
	// The changes land in the "during" window.
	c.Net.At(start+62*simnet.Millisecond, func() {
		c.Host(5).Node.ListenGroup(expGroup)
		_ = c.Host(1).Node.RequestAddProcessor(int64(c.Net.Now()), expGroup, 5)
	})
	c.Net.At(start+90*simnet.Millisecond, func() {
		_ = c.Host(3).Node.RequestRemoveProcessor(int64(c.Net.Now()), expGroup, 2)
	})
	c.RunFor(5 * simnet.Second)
	return E9Result{
		BeforeMeanMs: trace.Ms(before.Mean()),
		DuringMeanMs: trace.Ms(during.Mean()),
		AfterMeanMs:  trace.Ms(after.Mean()),
		DuringMaxMs:  trace.Ms(during.Max()),
	}
}

// E9PlannedChange regenerates experiment E9.
func E9PlannedChange() *trace.Table {
	tb := trace.NewTable(
		"E9: delivery latency around planned AddProcessor/RemoveProcessor (paper section 7.1)",
		"phase", "mean ms")
	r := RunE9PlannedChange(SeedOffset + 900)
	tb.AddRow("before changes", r.BeforeMeanMs)
	tb.AddRow("during changes", r.DuringMeanMs)
	tb.AddRow("after changes", r.AfterMeanMs)
	tb.AddRow("during (max)", r.DuringMaxMs)
	return tb
}

// Fig3Matrix prints the paper's Figure 3 as verified by the wire-level
// predicates (the behavioural checks live in core's conformance tests).
func Fig3Matrix() *trace.Table {
	tb := trace.NewTable(
		"Figure 3: message types and the delivery service provided by FTMP",
		"message type", "reliable", "source ordered", "totally ordered")
	rows := []struct {
		t        wire.MsgType
		reliable string
		source   string
		total    string
	}{
		{wire.TypeRegular, "Yes", "Yes", "Yes"},
		{wire.TypeRetransmitRequest, "No", "No", "No"},
		{wire.TypeHeartbeat, "No", "Yes (best effort)", "No"},
		{wire.TypeConnectRequest, "No", "No", "No"},
		{wire.TypeConnect, "Yes except to client group", "Yes", "Yes"},
		{wire.TypeAddProcessor, "Yes except to new member", "Yes", "Yes"},
		{wire.TypeRemoveProcessor, "Yes", "Yes", "Yes"},
		{wire.TypeSuspect, "Yes", "Yes", "No"},
		{wire.TypeMembership, "Yes", "Yes", "No"},
	}
	for _, r := range rows {
		if (r.reliable != "No") != r.t.Reliable() {
			panic(fmt.Sprintf("Fig3 drift: %v reliability", r.t))
		}
		if (r.total == "Yes") != r.t.TotallyOrdered() {
			panic(fmt.Sprintf("Fig3 drift: %v total order", r.t))
		}
		tb.AddRow(r.t.String(), r.reliable, r.source, r.total)
	}
	return tb
}

// Fig2Encapsulation demonstrates the paper's Figure 2: a GIOP message
// nested inside an FTMP message (the IP header is the transport's).
func Fig2Encapsulation() *trace.Table {
	g, err := giop.Encode(giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID: 1, ResponseExpected: true,
		ObjectKey: []byte("demo"), Operation: "ping",
	}}, false)
	if err != nil {
		panic(err)
	}
	f, err := wire.Encode(wire.Header{
		Source: 1, DestGroup: 7, Seq: 1,
		MsgTS: ids.MakeTimestamp(1, 1),
	}, &wire.Regular{Payload: g})
	if err != nil {
		panic(err)
	}
	tb := trace.NewTable(
		"Figure 2: encapsulation of a GIOP message",
		"layer", "bytes", "offset in datagram")
	tb.AddRow("FTMP header", wire.HeaderSize, 0)
	tb.AddRow("Regular body (conn id, request num, length)", len(f)-wire.HeaderSize-len(g), wire.HeaderSize)
	tb.AddRow("GIOP header", giop.HeaderSize, len(f)-len(g))
	tb.AddRow("GIOP body", len(g)-giop.HeaderSize, len(f)-len(g)+giop.HeaderSize)
	tb.AddRow("total FTMP datagram", len(f), "-")
	return tb
}

// A1Result compares the two retransmission-responder policies the
// paper's "any processor ... may retransmit" permits (ablation for the
// policy chosen in DESIGN.md section 3).
type A1Result struct {
	Policy      string
	CompleteMs  float64
	Retrans     uint64
	DupDrops    uint64
	PacketsSent uint64
}

// RunA1RepairPolicy measures one policy under loss.
func RunA1RepairPolicy(promiscuous bool, loss float64, seed int64) A1Result {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	netCfg := simnet.NewConfig()
	netCfg.LossRate = loss
	c := NewCluster(Options{
		Seed: seed, Net: netCfg,
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.PromiscuousRepair = promiscuous
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(expGroup, m)
	delivered := make(map[ids.ProcessorID]int)
	for _, p := range procs {
		p := p
		c.Host(p).OnDeliver = func(core.Delivery, int64) { delivered[p]++ }
	}
	c.RunFor(100 * simnet.Millisecond)
	const msgs, per = 200, 50
	start := c.Net.Now()
	startPkts := c.Net.Stats().PacketsSent
	for pi, p := range procs {
		p, pi := p, pi
		var send func(i int)
		send = func(i int) {
			if i >= per {
				return
			}
			_ = c.Host(p).Node.Multicast(int64(c.Net.Now()), expGroup, ids.ConnectionID{}, 0, payload(pi*per+i, 256))
			c.Net.At(c.Net.Now()+simnet.Millisecond, func() { send(i + 1) })
		}
		c.Net.At(start, func() { send(0) })
	}
	c.RunUntil(start+120*simnet.Second, func() bool {
		for _, p := range procs {
			if delivered[p] < msgs {
				return false
			}
		}
		return true
	})
	var retrans, dups uint64
	for _, p := range procs {
		st := c.Host(p).Node.Stats()
		retrans += st.RMP.Retransmissions
		dups += st.RMP.Duplicates
	}
	name := "source-only (default)"
	if promiscuous {
		name = "any holder (promiscuous)"
	}
	return A1Result{
		Policy:      name,
		CompleteMs:  float64(c.Net.Now()-start) / 1e6,
		Retrans:     retrans,
		DupDrops:    dups,
		PacketsSent: c.Net.Stats().PacketsSent - startPkts,
	}
}

// A1RepairPolicy regenerates ablation A1.
func A1RepairPolicy(loss float64) *trace.Table {
	tb := trace.NewTable(
		"A1 (ablation): RetransmitRequest responder policy under loss (paper section 5 allows either)",
		"policy", "complete ms", "retransmissions", "dup drops", "packets sent")
	for i, prom := range []bool{false, true} {
		r := RunA1RepairPolicy(prom, loss, SeedOffset+1000+int64(i))
		tb.AddRow(r.Policy, r.CompleteMs, r.Retrans, r.DupDrops, r.PacketsSent)
	}
	return tb
}

// A2Result compares Lamport and synchronized-clock timestamp modes
// (paper section 6 suggests synchronized clocks as an optimization).
type A2Result struct {
	Mode   string
	MeanMs float64
	P99Ms  float64
}

// RunA2ClockMode measures ordering latency for one clock mode. In this
// implementation the delivery rule is identical in both modes (hear
// every member past the timestamp), so the expected outcome is parity —
// recorded as an honest negative result; the paper's suggested gain
// needs a physical-clock delivery rule, noted in DESIGN.md.
func RunA2ClockMode(mode clock.Mode, seed int64) A2Result {
	hist := runFTMPLatency(seed, 4, 30, 64, 5*simnet.Millisecond, simnet.NewConfig(),
		func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ClockMode = mode
			cfg.ClockSkew = int64(p) * 1500 // modest skew between nodes
		})
	name := "logical (Lamport)"
	if mode == clock.Synchronized {
		name = "synchronized (skewed physical)"
	}
	return A2Result{Mode: name, MeanMs: trace.Ms(hist.Mean()), P99Ms: trace.Ms(hist.Percentile(99))}
}

// A2ClockMode regenerates ablation A2.
func A2ClockMode() *trace.Table {
	tb := trace.NewTable(
		"A2 (ablation): clock mode (paper section 6) — parity expected; see DESIGN.md",
		"clock mode", "mean ms", "p99 ms")
	for i, mode := range []clock.Mode{clock.Logical, clock.Synchronized} {
		r := RunA2ClockMode(mode, SeedOffset+1100+int64(i))
		tb.AddRow(r.Mode, r.MeanMs, r.P99Ms)
	}
	return tb
}

// A3Result measures the flow-control ablation: receiver buffer growth
// during a stall, with and without a sender window.
type A3Result struct {
	Cap          int // 0 = flow control off
	PeakBuffered int // receiver-side RMP+ROMP entries during the stall
	QueuedAtPeak int // sender-side deferred messages during the stall
	CatchupMs    float64
	AllDelivered bool
}

// RunA3FlowControl streams through a 3-member group while the network is
// cut for 200ms, then measures receiver buffer peaks and post-heal
// catch-up time.
func RunA3FlowControl(window int, seed int64) A3Result {
	procs := []ids.ProcessorID{1, 2, 3}
	c := NewCluster(Options{
		Seed: seed, Net: simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.MaxUnstable = window
			cfg.PGMP.SuspectTimeout = 1 << 60 // outage is not a fault here
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(expGroup, m)
	delivered := make(map[ids.ProcessorID]int)
	for _, p := range procs {
		p := p
		c.Host(p).OnDeliver = func(core.Delivery, int64) { delivered[p]++ }
	}
	c.RunFor(20 * simnet.Millisecond)

	const msgs = 300
	var send func(i int)
	send = func(i int) {
		if i >= msgs {
			return
		}
		_ = c.Host(1).Node.Multicast(int64(c.Net.Now()), expGroup, ids.ConnectionID{}, 0, payload(i, 512))
		c.Net.At(c.Net.Now()+simnet.Millisecond, func() { send(i + 1) })
	}
	c.Net.At(c.Net.Now(), func() { send(0) })

	// Cut the network for 200ms in the middle of the stream.
	cutAt := c.Net.Now() + 50*simnet.Millisecond
	c.Net.At(cutAt, func() { c.Net.SetLoss(1.0) })
	healAt := cutAt + 200*simnet.Millisecond
	c.Net.At(healAt, func() { c.Net.SetLoss(0) })

	peak, queuedAtPeak := 0, 0
	var sample func()
	sample = func() {
		held, pending := c.Host(2).Node.Buffered(expGroup)
		if held+pending > peak {
			peak = held + pending
			queuedAtPeak = c.Host(1).Node.QueuedSends(expGroup)
		}
		c.Net.At(c.Net.Now()+simnet.Millisecond, sample)
	}
	c.Net.At(c.Net.Now(), sample)

	done := c.RunUntil(120*simnet.Second, func() bool {
		for _, p := range procs {
			if delivered[p] < msgs {
				return false
			}
		}
		return true
	})
	return A3Result{
		Cap:          window,
		PeakBuffered: peak,
		QueuedAtPeak: queuedAtPeak,
		CatchupMs:    float64(c.Net.Now()-healAt) / 1e6,
		AllDelivered: done,
	}
}

// A3FlowControl regenerates ablation A3.
func A3FlowControl() *trace.Table {
	tb := trace.NewTable(
		"A3 (ablation): sender flow control during a 200ms outage (Config.MaxUnstable)",
		"sender window", "peak receiver buffer", "sender queue at peak", "catch-up ms", "all delivered")
	for i, window := range []int{0, 64, 16} {
		r := RunA3FlowControl(window, SeedOffset+1200+int64(i))
		label := "off"
		if r.Cap > 0 {
			label = fmt.Sprintf("%d msgs", r.Cap)
		}
		tb.AddRow(label, r.PeakBuffered, r.QueuedAtPeak, r.CatchupMs, r.AllDelivered)
	}
	return tb
}
