// Package gateway bridges unreplicated IIOP clients to replicated
// object groups: it accepts plain GIOP-over-TCP connections (what any
// ordinary ORB speaks) and forwards each Request through the fault
// tolerance infrastructure as a totally-ordered multicast invocation,
// returning the group's reply on the TCP connection. This is the role
// the Eternal system's gateway plays for clients outside the replication
// domain, and it lets the repository's mini-ORB client (package orb)
// call a replicated servant without knowing it is replicated.
package gateway

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/runtime"
	"ftmp/internal/trace"
	"ftmp/internal/transport"
)

// Gateway listens for IIOP connections and forwards requests onto one
// logical connection of the local infrastructure.
type Gateway struct {
	runner *runtime.Runner
	infra  *ftcorba.Infra
	conn   ids.ConnectionID

	// Timeout bounds how long one forwarded request may wait for the
	// group's reply before the client receives a system exception. It
	// converts any protocol-level stall (say, this processor wrongly
	// expelled under extreme scheduling delays) into a clean error
	// instead of a hung connection. Set before Listen; default 30s.
	Timeout time.Duration

	// MaxInFlight bounds requests being forwarded concurrently across
	// all client connections (each blocked reader holds one slot until
	// the group replies). Excess requests are shed immediately with
	// MessageError instead of queueing behind a degraded group; a client
	// that keeps pushing into overload is disconnected with
	// CloseConnection. 0 means unbounded. Set before Listen.
	MaxInFlight int

	// CallRetries is how many times a submission that finds the logical
	// connection momentarily not established (a view change in
	// progress, a rejoin underway) is retried before the client sees a
	// system exception. The retry delay starts at CallRetryDelay and
	// doubles, capped at 1s. Defaults 5 and 20ms. Set before Listen.
	CallRetries    int
	CallRetryDelay time.Duration

	lis      net.Listener
	stop     chan struct{}
	mu       sync.Mutex
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
	inflight int64
}

// shedCloseAfter is how many consecutive shed requests on one client
// connection escalate MessageError to CloseConnection.
const shedCloseAfter = 8

// New creates a gateway that forwards over conn via infra, serialized
// through the runner's event loop.
func New(runner *runtime.Runner, infra *ftcorba.Infra, conn ids.ConnectionID) *Gateway {
	return &Gateway{
		runner:         runner,
		infra:          infra,
		conn:           conn,
		Timeout:        30 * time.Second,
		CallRetries:    5,
		CallRetryDelay: 20 * time.Millisecond,
		stop:           make(chan struct{}),
		conns:          make(map[net.Conn]bool),
	}
}

// Listen starts accepting IIOP connections on addr and returns the
// bound address.
func (g *Gateway) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	g.lis = lis
	g.wg.Add(1)
	go g.acceptLoop()
	return lis.Addr().String(), nil
}

func (g *Gateway) isClosed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	guard := transport.RetryGuard{Name: "gateway accept", Counter: "gateway.accept"}
	for {
		conn, err := g.lis.Accept()
		if err != nil {
			// Transient accept failures (e.g. file-descriptor pressure)
			// must not kill the listener for all future clients.
			if g.isClosed() || !guard.Admit(err) {
				return
			}
			continue
		}
		guard.OK()
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.conns[conn] = true
		g.mu.Unlock()
		g.wg.Add(1)
		go g.serveConn(conn)
	}
}

func (g *Gateway) serveConn(conn net.Conn) {
	defer g.wg.Done()
	defer func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		conn.Close()
	}()
	// Replies may complete out of submission order (oneways interleave),
	// so writes are serialized.
	sheds := 0
	var wmu sync.Mutex
	write := func(buf []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		_, err := conn.Write(buf)
		return err
	}
	for {
		raw, err := giop.ReadMessage(conn)
		if err != nil {
			return
		}
		msg, err := giop.Decode(raw)
		if err != nil {
			out, _ := giop.Encode(giop.Message{Type: giop.MsgMessageError, MessageError: &giop.MessageError{}}, false)
			_ = write(out)
			continue
		}
		switch msg.Type {
		case giop.MsgRequest:
			if !g.admit() {
				sheds++
				trace.Inc("gateway.shed")
				out, _ := giop.Encode(giop.Message{Type: giop.MsgMessageError, MessageError: &giop.MessageError{}}, false)
				_ = write(out)
				if sheds >= shedCloseAfter {
					trace.Inc("gateway.overload_close")
					out, _ := giop.Encode(giop.Message{Type: giop.MsgCloseConnection, CloseConnection: &giop.CloseConnection{}}, false)
					_ = write(out)
					return
				}
				continue
			}
			sheds = 0
			g.forward(msg, write)
			g.release()
		case giop.MsgCloseConnection:
			return
		default:
			// LocateRequest and friends are not meaningful through the
			// gateway; answer MessageError so clients fail fast.
			out, _ := giop.Encode(giop.Message{Type: giop.MsgMessageError, MessageError: &giop.MessageError{}}, false)
			_ = write(out)
		}
	}
}

// admit claims an in-flight slot, or reports that the gateway is at
// MaxInFlight and this request must be shed.
func (g *Gateway) admit() bool {
	if g.MaxInFlight <= 0 {
		return true
	}
	if atomic.AddInt64(&g.inflight, 1) > int64(g.MaxInFlight) {
		atomic.AddInt64(&g.inflight, -1)
		return false
	}
	return true
}

func (g *Gateway) release() {
	if g.MaxInFlight > 0 {
		atomic.AddInt64(&g.inflight, -1)
	}
}

// forward multicasts one request through the infrastructure and writes
// the group's reply back with the client's original request id.
func (g *Gateway) forward(msg giop.Message, write func([]byte) error) {
	req := msg.Request
	clientID := req.RequestID
	var once sync.Once
	respond := func(reply *giop.Reply) {
		once.Do(func() {
			reply.RequestID = clientID
			out, err := giop.Encode(giop.Message{Type: giop.MsgReply, Reply: reply}, msg.LittleEndian)
			if err != nil {
				return
			}
			_ = write(out)
		})
	}
	var cb func([]byte, error)
	done := make(chan struct{})
	if req.ResponseExpected {
		cb = func(body []byte, err error) {
			defer close(done)
			if err == nil {
				respond(&giop.Reply{Status: giop.NoException, Body: body})
				return
			}
			// Servant exceptions pass through with their original kind
			// and repository id; infrastructure failures surface as
			// gateway system exceptions.
			if exc, ok := err.(*orb.Exception); ok {
				status := giop.SystemException
				if !exc.System {
					status = giop.UserException
				}
				respond(&giop.Reply{Status: status, Body: orb.EncodeExceptionBody(exc)})
				return
			}
			respond(&giop.Reply{Status: giop.SystemException, Body: encodeGatewayExc(err)})
		}
	}
	// Submission failures during a view change (the logical connection
	// momentarily not established while membership reforms or a replica
	// rejoins) or while this replica sits in a wedged minority partition
	// degrade gracefully: retry with bounded backoff before surfacing an
	// exception — a short partition heals under the client's feet.
	// Configuration errors fail immediately.
	var callErr error
	delay := g.CallRetryDelay
retry:
	for attempt := 0; ; attempt++ {
		g.runner.Do(func(_ *core.Node, now int64) {
			callErr = g.infra.Call(now, g.conn, req.Operation, req.Body, cb)
		})
		if callErr == nil || attempt >= g.CallRetries ||
			!(errors.Is(callErr, ftcorba.ErrNotEstablished) || errors.Is(callErr, core.ErrWedged)) {
			break
		}
		trace.Inc("gateway.call_retries")
		select {
		case <-g.stop:
			break retry
		case <-time.After(delay):
		}
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
	if callErr != nil {
		if req.ResponseExpected {
			if errors.Is(callErr, core.ErrWedged) {
				// Retryable by the client against another gateway: this
				// replica is in a wedged minority, the primary component
				// lives elsewhere.
				trace.Inc("gateway.not_primary")
				respond(&giop.Reply{Status: giop.SystemException, Body: encodeGatewayExc(
					fmt.Errorf("not primary: %w", callErr))})
			} else {
				respond(&giop.Reply{Status: giop.SystemException, Body: encodeGatewayExc(callErr)})
			}
		}
		return
	}
	if req.ResponseExpected {
		// Block this TCP connection's reader until the group answers,
		// preserving IIOP's per-connection reply ordering expectations
		// for simple clients. (The group invocation itself proceeds on
		// the runner loop.) Gateway shutdown or the reply deadline
		// releases the wait.
		timer := time.NewTimer(g.Timeout)
		defer timer.Stop()
		select {
		case <-done:
		case <-g.stop:
		case <-timer.C:
			respond(&giop.Reply{
				Status: giop.SystemException,
				Body:   encodeGatewayExc(fmt.Errorf("no reply from the object group within %v", g.Timeout)),
			})
		}
	}
}

func encodeGatewayExc(err error) []byte {
	e := giop.NewEncoder(false)
	e.String(fmt.Sprintf("IDL:ftmp/gateway/Error:1.0#%v", err))
	e.ULong(0)
	e.ULong(0)
	return e.Bytes()
}

// Close stops the listener and open connections.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	close(g.stop)
	g.closed = true
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	if g.lis != nil {
		g.lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	g.wg.Wait()
}
