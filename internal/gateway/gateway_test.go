package gateway_test

// End-to-end over real sockets: an ordinary IIOP client (TCP) invokes a
// replicated object group through the gateway, which carries the
// requests over FTMP on a UDP mesh to two server replicas.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/gateway"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/runtime"
	"ftmp/internal/transport"
	"ftmp/internal/wire"
)

const (
	clientOG = ids.ObjectGroupID(10)
	serverOG = ids.ObjectGroupID(20)
)

var conn = ids.ConnectionID{ClientDomain: 1, ClientGroup: clientOG, ServerDomain: 1, ServerGroup: serverOG}

// counter is the replicated servant.
type counter struct {
	mu    sync.Mutex
	value int64
	calls int
}

func (c *counter) Invoke(op string, args []byte) ([]byte, *orb.Exception) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "slow":
		// Hold the invocation (and so the gateway's in-flight slot) long
		// enough for load-shedding tests to observe the overload window.
		time.Sleep(300 * time.Millisecond)
		e := giop.NewEncoder(false)
		e.LongLong(c.value)
		return e.Bytes(), nil
	case "add":
		d := giop.NewDecoder(args, false)
		c.value += d.LongLong()
		if d.Err() != nil {
			return nil, orb.ExcUnknown
		}
		c.calls++
		fallthrough
	case "get":
		e := giop.NewEncoder(false)
		e.LongLong(c.value)
		return e.Bytes(), nil
	default:
		return nil, orb.ExcBadOperation
	}
}

func (c *counter) snapshot() (int64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value, c.calls
}

type world struct {
	runners  map[ids.ProcessorID]*runtime.Runner
	infras   map[ids.ProcessorID]*ftcorba.Infra
	counters map[ids.ProcessorID]*counter
}

// buildWorld wires processors 1,2 as server replicas and 3 as the
// gateway host over a loopback UDP mesh.
func buildWorld(t *testing.T) *world {
	t.Helper()
	return buildWorldOpts(t, true)
}

// buildWorldOpts optionally leaves the logical connection unopened so
// tests can exercise the gateway against a not-yet-established group.
func buildWorldOpts(t *testing.T, connect bool) *world {
	t.Helper()
	servers := ids.NewMembership(1, 2)
	w := &world{
		runners:  make(map[ids.ProcessorID]*runtime.Runner),
		infras:   make(map[ids.ProcessorID]*ftcorba.Infra),
		counters: make(map[ids.ProcessorID]*counter),
	}
	var meshes []*transport.UDPMesh
	for i := 1; i <= 3; i++ {
		p := ids.ProcessorID(i)
		cfg := core.DefaultConfig(p)
		cfg.HeartbeatInterval = 2_000_000 // 2ms: keep the test snappy
		// Failure detection must be provisioned for scheduler jitter on
		// a loaded CI machine, or healthy-but-starved members get
		// wrongly convicted (the classic failure-detector tuning rule).
		cfg.PGMP.SuspectTimeout = 2_000_000_000
		cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{serverOG: servers}
		var r *runtime.Runner
		var infra *ftcorba.Infra
		cb := core.Callbacks{
			Transmit: func(wire.MulticastAddr, []byte) {},
			Deliver: func(d core.Delivery) {
				infra.OnDeliver(d, r.Now())
			},
		}
		var mesh *transport.UDPMesh
		var err error
		r, err = runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
			m, e := transport.NewUDPMesh("127.0.0.1:0", h)
			mesh = m
			return m, e
		}, runtime.Options{Tick: 500 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		infra = ftcorba.New(p, 1, r.Node)
		if servers.Contains(p) {
			cnt := &counter{}
			w.counters[p] = cnt
			infra.Serve(serverOG, "counter", cnt)
		} else {
			infra.RegisterObjectKey(serverOG, "counter")
		}
		w.runners[p] = r
		w.infras[p] = infra
		meshes = append(meshes, mesh)
		t.Cleanup(r.Close)
	}
	for _, m := range meshes {
		for _, peer := range meshes {
			if err := m.AddPeer(peer.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !connect {
		return w
	}
	// The gateway host opens the logical connection.
	domainAddr := core.DefaultConfig(3).DomainAddr
	w.runners[3].Do(func(_ *core.Node, now int64) {
		w.infras[3].Connect(now, conn, domainAddr, ids.NewMembership(3))
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		established := false
		w.runners[3].Do(func(*core.Node, int64) {
			established = w.infras[3].Established(conn)
		})
		if established {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection not established")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return w
}

func TestIIOPClientThroughGateway(t *testing.T) {
	w := buildWorld(t)
	gw := gateway.New(w.runners[3], w.infras[3], conn)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// A completely ordinary IIOP client.
	cli, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	add := func(v int64) int64 {
		e := giop.NewEncoder(false)
		e.LongLong(v)
		out, err := cli.Invoke("counter", "add", e.Bytes())
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		d := giop.NewDecoder(out, false)
		return d.LongLong()
	}
	if got := add(5); got != 5 {
		t.Errorf("add(5) = %d", got)
	}
	if got := add(7); got != 12 {
		t.Errorf("add(7) = %d", got)
	}

	// Both replicas executed both adds exactly once.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v1, c1 := w.counters[1].snapshot()
		v2, c2 := w.counters[2].snapshot()
		if v1 == 12 && v2 == 12 && c1 == 2 && c2 == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas diverged: P1=(%d,%d) P2=(%d,%d)", v1, c1, v2, c2)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Bad operation surfaces as a system exception at the TCP client.
	if _, err := cli.Invoke("counter", "no-such-op", nil); err == nil {
		t.Error("bad op succeeded through gateway")
	} else {
		var exc *orb.Exception
		if !errors.As(err, &exc) {
			t.Errorf("err = %v", err)
		}
	}
}

func TestGatewayRejectsNonRequests(t *testing.T) {
	w := buildWorld(t)
	gw := gateway.New(w.runners[3], w.infras[3], conn)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	cli, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Locate is answered with MessageError -> the client read loop sees
	// a non-reply and keeps waiting; use a raw check instead: a second
	// Invoke still works after the junk (the connection survives).
	if _, err := cli.Invoke("counter", "get", nil); err != nil {
		t.Fatalf("first invoke: %v", err)
	}
	gw.Close() // close while idle: no hangs
}

func TestGatewayGarbageBytes(t *testing.T) {
	// Raw non-GIOP bytes on the TCP connection close it without harming
	// the gateway; a fresh connection still works.
	w := buildWorld(t)
	gw := gateway.New(w.runners[3], w.infras[3], conn)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("definitely not GIOP at all, not even close"))
	raw.Close()

	cli, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Invoke("counter", "get", nil); err != nil {
		t.Fatalf("gateway damaged by garbage connection: %v", err)
	}
}

// rawRequest writes one GIOP Request on a raw TCP connection.
func rawRequest(t *testing.T, c net.Conn, id uint32, op string) {
	t.Helper()
	out, err := giop.Encode(giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID:        id,
		ResponseExpected: true,
		ObjectKey:        []byte("counter"),
		Operation:        op,
	}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(out); err != nil {
		t.Fatal(err)
	}
}

// rawRead reads and decodes one GIOP message.
func rawRead(t *testing.T, c net.Conn) giop.Message {
	t.Helper()
	raw, err := giop.ReadMessage(c)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	msg, err := giop.Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return msg
}

func TestGatewayShedsLoadAndClosesOverloadedClient(t *testing.T) {
	w := buildWorld(t)
	gw := gateway.New(w.runners[3], w.infras[3], conn)
	gw.MaxInFlight = 1
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// Connection A occupies the single in-flight slot with a slow call.
	a, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	rawRequest(t, a, 1, "slow")
	time.Sleep(50 * time.Millisecond) // let A's request reach the group

	// Connection B pushes into the overload: every request is shed with
	// MessageError, and persisting past the threshold gets it closed.
	b, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 8; i++ {
		rawRequest(t, b, uint32(10+i), "get")
	}
	for i := 0; i < 8; i++ {
		if msg := rawRead(t, b); msg.Type != giop.MsgMessageError {
			t.Fatalf("shed %d: got %v, want MessageError", i, msg.Type)
		}
	}
	if msg := rawRead(t, b); msg.Type != giop.MsgCloseConnection {
		t.Fatalf("got %v, want CloseConnection after sustained overload", msg.Type)
	}

	// A's slow call still completes: shedding never harms admitted work.
	if msg := rawRead(t, a); msg.Type != giop.MsgReply || msg.Reply.Status != giop.NoException {
		t.Fatalf("slow call got %v", msg.Type)
	}

	// With the slot free again a fresh connection is served normally.
	cli, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Invoke("counter", "get", nil); err != nil {
		t.Fatalf("invoke after overload cleared: %v", err)
	}
}

func TestGatewayRetriesUntilEstablished(t *testing.T) {
	// The logical connection is opened only after the client's request
	// is already inside the gateway: graceful degradation retries the
	// submission instead of bouncing the client.
	w := buildWorldOpts(t, false)
	gw := gateway.New(w.runners[3], w.infras[3], conn)
	gw.CallRetries = 100
	gw.CallRetryDelay = 10 * time.Millisecond
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	cli, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	type result struct {
		out []byte
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := cli.Invoke("counter", "get", nil)
		done <- result{out, err}
	}()

	time.Sleep(100 * time.Millisecond) // request is now waiting inside forward
	domainAddr := core.DefaultConfig(3).DomainAddr
	w.runners[3].Do(func(_ *core.Node, now int64) {
		w.infras[3].Connect(now, conn, domainAddr, ids.NewMembership(3))
	})

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("invoke across establishment: %v", r.err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("invoke did not complete after establishment")
	}
}

func TestGatewayOneway(t *testing.T) {
	w := buildWorld(t)
	gw := gateway.New(w.runners[3], w.infras[3], conn)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	cli, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	e := giop.NewEncoder(false)
	e.LongLong(9)
	if err := cli.Oneway("counter", "add", e.Bytes()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v1, _ := w.counters[1].snapshot()
		v2, _ := w.counters[2].snapshot()
		if v1 == 9 && v2 == 9 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("oneway not applied: %d %d", v1, v2)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
