// Package ids defines the identifier and timestamp types shared by every
// layer of the FTMP protocol stack: processor, group, fault-tolerance
// domain and logical-connection identifiers, per-source sequence numbers,
// and the Lamport timestamps that ROMP uses to order messages.
//
// The encodings here match the FTMP header layout described in section 3.2
// of the paper; see package wire for the byte-level codec.
package ids

import (
	"fmt"
	"math"
)

// ProcessorID identifies a processor (a node running the FTMP stack).
// Processor identifiers are assigned by the fault tolerance infrastructure
// and are unique within a fault tolerance domain. The zero value is
// reserved and never names a real processor.
type ProcessorID uint32

// NilProcessor is the reserved "no processor" identifier.
const NilProcessor ProcessorID = 0

// String implements fmt.Stringer.
func (p ProcessorID) String() string { return fmt.Sprintf("P%d", uint32(p)) }

// Valid reports whether p names a real processor.
func (p ProcessorID) Valid() bool { return p != NilProcessor }

// GroupID identifies a processor group: the set of processors that
// jointly support one or more object groups and share one IP multicast
// address. The zero value is reserved; PGMP uses it as the destination of
// ConnectRequest messages, which are addressed to a fault tolerance
// domain rather than to an established group.
type GroupID uint32

// NilGroup is the reserved "no group" identifier used as the destination
// of ConnectRequest messages (paper section 7: "the destination processor
// group id ... all have the value 0").
const NilGroup GroupID = 0

// String implements fmt.Stringer.
func (g GroupID) String() string { return fmt.Sprintf("G%d", uint32(g)) }

// Valid reports whether g names an established processor group.
func (g GroupID) Valid() bool { return g != NilGroup }

// DomainID identifies a fault tolerance domain. Object group identifiers
// are unique within a domain, and each domain has its own IP multicast
// address on which ConnectRequest messages are received.
type DomainID uint32

// String implements fmt.Stringer.
func (d DomainID) String() string { return fmt.Sprintf("D%d", uint32(d)) }

// ObjectGroupID identifies an object group (the replicas of one CORBA
// object) within a fault tolerance domain.
type ObjectGroupID uint32

// String implements fmt.Stringer.
func (o ObjectGroupID) String() string { return fmt.Sprintf("O%d", uint32(o)) }

// ConnectionID identifies a logical connection between a client object
// group and a server object group (paper section 4). It consists of the
// fault tolerance domain identifier and object group identifier of each
// endpoint. At most one connection is open between a given pair of object
// groups at any time, so the quadruple is a unique key.
type ConnectionID struct {
	ClientDomain DomainID
	ClientGroup  ObjectGroupID
	ServerDomain DomainID
	ServerGroup  ObjectGroupID
}

// String implements fmt.Stringer.
func (c ConnectionID) String() string {
	return fmt.Sprintf("conn(%v/%v->%v/%v)", c.ClientDomain, c.ClientGroup, c.ServerDomain, c.ServerGroup)
}

// IsZero reports whether c is the zero connection identifier.
func (c ConnectionID) IsZero() bool { return c == ConnectionID{} }

// Reverse returns the connection identifier with client and server
// endpoints swapped. Replies travel on the same logical connection as the
// requests they answer, so both directions map to the same canonical id;
// Reverse supports normalizing lookups.
func (c ConnectionID) Reverse() ConnectionID {
	return ConnectionID{
		ClientDomain: c.ServerDomain,
		ClientGroup:  c.ServerGroup,
		ServerDomain: c.ClientDomain,
		ServerGroup:  c.ClientGroup,
	}
}

// SeqNum is a per-(source processor, destination group) message sequence
// number. It is incremented each time a message that must be reliably
// delivered is transmitted (paper section 3.2); RMP uses gaps in the
// sequence to detect missing messages.
type SeqNum uint32

// Timestamp is a Lamport timestamp used by ROMP for causal and total
// ordering. The high 48 bits hold the logical clock counter and the low
// 16 bits hold (the low bits of) the originating processor identifier, so
// that timestamps from different processors never compare equal and the
// uint64 ordering is a total order consistent with the causal order.
type Timestamp uint64

// NilTimestamp is the zero timestamp; it precedes every real timestamp.
const NilTimestamp Timestamp = 0

// MaxCounter is the largest logical clock counter a Timestamp can hold.
const MaxCounter uint64 = (1 << 48) - 1

// MakeTimestamp builds a timestamp from a logical clock counter and the
// originating processor. Counters beyond 48 bits saturate; at one tick
// per nanosecond that allows over three days of continuous operation, and
// logical clocks tick far more slowly.
func MakeTimestamp(counter uint64, p ProcessorID) Timestamp {
	if counter > MaxCounter {
		counter = MaxCounter
	}
	return Timestamp(counter<<16 | uint64(uint16(p)))
}

// Counter returns the logical clock counter component of t.
func (t Timestamp) Counter() uint64 { return uint64(t) >> 16 }

// Tiebreak returns the processor tie-break component of t.
func (t Timestamp) Tiebreak() uint16 { return uint16(t) }

// Before reports whether t is ordered strictly before u.
func (t Timestamp) Before(u Timestamp) bool { return t < u }

// String implements fmt.Stringer.
func (t Timestamp) String() string {
	return fmt.Sprintf("ts(%d.%d)", t.Counter(), t.Tiebreak())
}

// InfTimestamp is a timestamp greater than any timestamp a processor can
// generate; it is used as the identity for min-reductions over members.
const InfTimestamp Timestamp = Timestamp(math.MaxUint64)

// RequestNum numbers the requests on one logical connection. All client
// replicas use the same request number for a given request, and all
// server replicas use it for the corresponding reply; request numbers are
// monotonically increasing over the connection, so each
// (ConnectionID, RequestNum) pair is unique (paper section 4).
type RequestNum uint64

// Membership is an immutable, sorted set of processor identifiers: the
// membership of a processor group at some timestamp.
type Membership []ProcessorID

// NewMembership returns a normalized (sorted, deduplicated) membership
// containing the given processors. The nil processor is dropped.
func NewMembership(ps ...ProcessorID) Membership {
	m := make(Membership, 0, len(ps))
	for _, p := range ps {
		if p.Valid() {
			m = m.Add(p)
		}
	}
	return m
}

// Contains reports whether p is a member.
func (m Membership) Contains(p ProcessorID) bool {
	for _, q := range m {
		if q == p {
			return true
		}
	}
	return false
}

// Add returns a membership with p included, preserving sorted order.
// The receiver is not modified.
func (m Membership) Add(p ProcessorID) Membership {
	if !p.Valid() || m.Contains(p) {
		return m
	}
	out := make(Membership, 0, len(m)+1)
	inserted := false
	for _, q := range m {
		if !inserted && p < q {
			out = append(out, p)
			inserted = true
		}
		out = append(out, q)
	}
	if !inserted {
		out = append(out, p)
	}
	return out
}

// Remove returns a membership with p excluded. The receiver is not
// modified.
func (m Membership) Remove(p ProcessorID) Membership {
	out := make(Membership, 0, len(m))
	for _, q := range m {
		if q != p {
			out = append(out, q)
		}
	}
	return out
}

// RemoveAll returns a membership with every processor in ps excluded.
func (m Membership) RemoveAll(ps []ProcessorID) Membership {
	out := m
	for _, p := range ps {
		out = out.Remove(p)
	}
	return out
}

// Equal reports whether m and other contain exactly the same processors.
func (m Membership) Equal(other Membership) bool {
	if len(m) != len(other) {
		return false
	}
	for i := range m {
		if m[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of m.
func (m Membership) Clone() Membership {
	out := make(Membership, len(m))
	copy(out, m)
	return out
}

// String implements fmt.Stringer.
func (m Membership) String() string {
	s := "{"
	for i, p := range m {
		if i > 0 {
			s += ","
		}
		s += p.String()
	}
	return s + "}"
}
