package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProcessorIDValid(t *testing.T) {
	if NilProcessor.Valid() {
		t.Error("NilProcessor should not be valid")
	}
	if !ProcessorID(1).Valid() {
		t.Error("P1 should be valid")
	}
	if got := ProcessorID(7).String(); got != "P7" {
		t.Errorf("String() = %q, want P7", got)
	}
}

func TestGroupIDValid(t *testing.T) {
	if NilGroup.Valid() {
		t.Error("NilGroup should not be valid")
	}
	if !GroupID(3).Valid() {
		t.Error("G3 should be valid")
	}
}

func TestConnectionIDReverse(t *testing.T) {
	c := ConnectionID{ClientDomain: 1, ClientGroup: 2, ServerDomain: 3, ServerGroup: 4}
	r := c.Reverse()
	if r.ClientDomain != 3 || r.ClientGroup != 4 || r.ServerDomain != 1 || r.ServerGroup != 2 {
		t.Errorf("Reverse() = %+v", r)
	}
	if r.Reverse() != c {
		t.Error("Reverse is not an involution")
	}
	if c.IsZero() {
		t.Error("non-zero connection reported zero")
	}
	if !(ConnectionID{}).IsZero() {
		t.Error("zero connection not reported zero")
	}
}

func TestMakeTimestampRoundTrip(t *testing.T) {
	ts := MakeTimestamp(12345, ProcessorID(9))
	if ts.Counter() != 12345 {
		t.Errorf("Counter() = %d, want 12345", ts.Counter())
	}
	if ts.Tiebreak() != 9 {
		t.Errorf("Tiebreak() = %d, want 9", ts.Tiebreak())
	}
}

func TestMakeTimestampSaturates(t *testing.T) {
	ts := MakeTimestamp(MaxCounter+100, ProcessorID(1))
	if ts.Counter() != MaxCounter {
		t.Errorf("Counter() = %d, want saturation at %d", ts.Counter(), MaxCounter)
	}
}

func TestTimestampOrdering(t *testing.T) {
	// Higher counter always wins regardless of processor.
	a := MakeTimestamp(10, ProcessorID(65535))
	b := MakeTimestamp(11, ProcessorID(1))
	if !a.Before(b) {
		t.Error("counter should dominate processor tie-break")
	}
	// Equal counters are broken by processor id, so no two processors
	// ever produce equal timestamps.
	c := MakeTimestamp(10, ProcessorID(1))
	d := MakeTimestamp(10, ProcessorID(2))
	if !c.Before(d) || c == d {
		t.Error("processor tie-break failed")
	}
	if NilTimestamp != 0 {
		t.Error("NilTimestamp should be zero")
	}
	if !a.Before(InfTimestamp) {
		t.Error("InfTimestamp should dominate")
	}
}

func TestTimestampOrderTotalProperty(t *testing.T) {
	// Property: for distinct (counter, proc) pairs with proc fitting in
	// 16 bits, timestamps are distinct and ordered first by counter.
	f := func(c1, c2 uint32, p1, p2 uint16) bool {
		if p1 == 0 {
			p1 = 1
		}
		if p2 == 0 {
			p2 = 2
		}
		t1 := MakeTimestamp(uint64(c1), ProcessorID(p1))
		t2 := MakeTimestamp(uint64(c2), ProcessorID(p2))
		if c1 < c2 && !t1.Before(t2) {
			return false
		}
		if c1 == c2 && p1 != p2 && t1 == t2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMembershipAddRemove(t *testing.T) {
	m := NewMembership(3, 1, 2, 2, 0) // dedup, drop nil, sort
	want := Membership{1, 2, 3}
	if !m.Equal(want) {
		t.Fatalf("NewMembership = %v, want %v", m, want)
	}
	m2 := m.Add(ProcessorID(2)) // already present
	if !m2.Equal(want) {
		t.Errorf("Add existing changed membership: %v", m2)
	}
	m3 := m.Add(ProcessorID(5)).Add(ProcessorID(4))
	if !m3.Equal(Membership{1, 2, 3, 4, 5}) {
		t.Errorf("Add = %v", m3)
	}
	// Original untouched (immutability).
	if !m.Equal(want) {
		t.Errorf("receiver mutated: %v", m)
	}
	m4 := m3.Remove(ProcessorID(3))
	if !m4.Equal(Membership{1, 2, 4, 5}) {
		t.Errorf("Remove = %v", m4)
	}
	m5 := m3.RemoveAll([]ProcessorID{1, 5})
	if !m5.Equal(Membership{2, 3, 4}) {
		t.Errorf("RemoveAll = %v", m5)
	}
	if m.Contains(ProcessorID(9)) {
		t.Error("Contains(9) = true")
	}
	if !m.Contains(ProcessorID(2)) {
		t.Error("Contains(2) = false")
	}
}

func TestMembershipAddNil(t *testing.T) {
	m := NewMembership(1)
	if got := m.Add(NilProcessor); !got.Equal(m) {
		t.Errorf("Add(nil) = %v", got)
	}
}

func TestMembershipClone(t *testing.T) {
	m := NewMembership(1, 2, 3)
	c := m.Clone()
	if !c.Equal(m) {
		t.Fatal("clone differs")
	}
	c[0] = ProcessorID(99)
	if m[0] == ProcessorID(99) {
		t.Error("clone shares storage")
	}
}

func TestMembershipEqual(t *testing.T) {
	if !NewMembership().Equal(NewMembership()) {
		t.Error("empty memberships should be equal")
	}
	if NewMembership(1).Equal(NewMembership(1, 2)) {
		t.Error("different lengths should differ")
	}
	if NewMembership(1, 3).Equal(NewMembership(1, 2)) {
		t.Error("different members should differ")
	}
}

func TestMembershipSortedInvariantProperty(t *testing.T) {
	// Property: any sequence of Add/Remove operations keeps the
	// membership sorted and duplicate-free.
	f := func(ops []uint16) bool {
		var m Membership
		for i, op := range ops {
			p := ProcessorID(op%64 + 1)
			if i%3 == 2 {
				m = m.Remove(p)
			} else {
				m = m.Add(p)
			}
		}
		for i := 1; i < len(m); i++ {
			if m[i-1] >= m[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{GroupID(4).String(), "G4"},
		{DomainID(2).String(), "D2"},
		{ObjectGroupID(8).String(), "O8"},
		{MakeTimestamp(5, 3).String(), "ts(5.3)"},
		{NewMembership(2, 1).String(), "{P1,P2}"},
		{ConnectionID{1, 2, 3, 4}.String(), "conn(D1/O2->D3/O4)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}
