// Package rmp implements the Reliable Multicast Protocol layer of FTMP
// (paper section 5): reliable, source-ordered delivery of multicast
// messages using per-(source, group) sequence numbers, negative
// acknowledgments (RetransmitRequest messages) for gap repair, and
// retransmission by any processor that holds a requested message.
//
// The layer is a pure state machine: it never performs I/O or reads
// clocks. The FTMP node (package core) feeds it received messages and
// the current time, and acts on the NACKs and deliverables it returns.
package rmp

import (
	"fmt"
	"slices"

	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

// Held is a message retained by RMP, either awaiting in-order delivery
// (a gap precedes it) or already delivered but retained so that this
// processor can answer RetransmitRequests until the message is stable.
type Held struct {
	Seq ids.SeqNum
	TS  ids.Timestamp
	// Raw is the complete encoded FTMP message, retransmitted verbatim.
	// It may be nil for messages this processor originated inside a
	// Packed container (which has no standalone encoding); encoding() then
	// produces and memoizes a standalone frame on first retransmission.
	Raw []byte
	Msg wire.Message
}

// encoding returns the bytes to retransmit for h, lazily producing a
// standalone encoding when the message was first sent inside a Packed
// container. The result is memoized, so repeated repairs pay once.
func (h *Held) encoding() []byte {
	if h.Raw == nil && h.Msg.Body != nil {
		raw, err := wire.Encode(h.Msg.Header, h.Msg.Body)
		if err != nil {
			return nil // unencodable retained message; skip repair
		}
		h.Raw = raw
	}
	return h.Raw
}

// Config holds the RMP policy knobs, in the driver's time unit
// (nanoseconds everywhere in this repository).
type Config struct {
	// NackDelay is how long a detected gap may stand before the first
	// RetransmitRequest is multicast; it absorbs in-network reordering.
	NackDelay int64
	// NackInterval is the initial re-request period; it doubles after
	// every unanswered request up to NackMaxInterval.
	NackInterval    int64
	NackMaxInterval int64
}

// DefaultConfig returns the policy used by the experiments: first NACK
// after 2ms, then 5ms doubling to 80ms.
func DefaultConfig() Config {
	return Config{
		NackDelay:       2_000_000,
		NackInterval:    5_000_000,
		NackMaxInterval: 80_000_000,
	}
}

// Stats counts RMP-level events for the experiment harness.
type Stats struct {
	Received        uint64 // reliable messages accepted (first copies)
	Duplicates      uint64 // copies discarded as already held/delivered
	OutOfOrder      uint64 // messages buffered behind a gap
	NacksSent       uint64 // RetransmitRequest messages produced
	Retransmissions uint64 // messages retransmitted in answer to NACKs
	DiscardedStable uint64 // buffered messages reclaimed as stable
}

// sourceState tracks one originator within the group.
type sourceState struct {
	// nextDeliver is the sequence number of the next message to deliver
	// in source order; everything below it has been delivered.
	nextDeliver ids.SeqNum
	// highestSeen is the largest sequence number known to exist from
	// this source, learned from messages or Heartbeat headers.
	highestSeen ids.SeqNum
	// pending holds received messages awaiting earlier ones.
	pending map[ids.SeqNum]*Held
	// retained holds delivered messages kept for retransmission until
	// ROMP reports them stable.
	retained map[ids.SeqNum]*Held
	// nackAt is when the next RetransmitRequest for this source's gap
	// fires; zero means no gap is outstanding.
	nackAt int64
	// nackEvery is the current backoff interval.
	nackEvery int64
	// retMinTS is a lower bound on the timestamps in retained (exact
	// after each DiscardStable pass); it lets DiscardStable skip sources
	// with nothing old enough without scanning their buffers.
	retMinTS ids.Timestamp
	// retMinValid is false when retained is empty or retMinTS is stale.
	retMinValid bool
}

// retain moves h into the retained buffer, maintaining the retMinTS
// lower bound DiscardStable prunes by.
func (s *sourceState) retain(h *Held) {
	s.retained[h.Seq] = h
	if !s.retMinValid || h.TS < s.retMinTS {
		s.retMinTS, s.retMinValid = h.TS, true
	}
}

func newSourceState() *sourceState {
	return &sourceState{
		nextDeliver: 1,
		pending:     make(map[ids.SeqNum]*Held),
		retained:    make(map[ids.SeqNum]*Held),
	}
}

// Layer is the RMP state for one processor group at one processor.
type Layer struct {
	self    ids.ProcessorID
	group   ids.GroupID
	cfg     Config
	sources map[ids.ProcessorID]*sourceState
	// procs mirrors the keys of sources in ascending order, maintained on
	// insert, so the per-tick NacksDue scan never sorts.
	procs []ids.ProcessorID
	// nackScratch backs the slice NacksDue returns; its contents are
	// valid until the next NacksDue call.
	nackScratch []wire.RetransmitRequest
	stats       Stats
}

// New creates the RMP layer for group at processor self.
func New(self ids.ProcessorID, group ids.GroupID, cfg Config) *Layer {
	return &Layer{
		self:    self,
		group:   group,
		cfg:     cfg,
		sources: make(map[ids.ProcessorID]*sourceState),
	}
}

// Stats returns a snapshot of the layer's counters.
func (l *Layer) Stats() Stats { return l.stats }

func (l *Layer) source(p ids.ProcessorID) *sourceState {
	s, ok := l.sources[p]
	if !ok {
		s = newSourceState()
		l.sources[p] = s
		if i, found := slices.BinarySearch(l.procs, p); !found {
			l.procs = slices.Insert(l.procs, i, p)
		}
	}
	return s
}

// SetBaseline establishes that messages from p with sequence numbers
// <= seq precede this processor's participation and will never be
// delivered here. A new group member calls it with the sequence numbers
// cited in the AddProcessor or Connect message that admitted it.
func (l *Layer) SetBaseline(p ids.ProcessorID, seq ids.SeqNum) {
	s := l.source(p)
	if seq+1 > s.nextDeliver {
		s.nextDeliver = seq + 1
	}
	if seq > s.highestSeen {
		s.highestSeen = seq
	}
	for q := range s.pending {
		if q <= seq {
			delete(s.pending, q)
		}
	}
}

// DropSource forgets all state for p (p was removed from the group).
// Retained messages from p stay available for retransmission until
// stability, so removal only clears gap-tracking.
func (l *Layer) DropSource(p ids.ProcessorID) {
	if s, ok := l.sources[p]; ok {
		s.nackAt = 0
		s.pending = make(map[ids.SeqNum]*Held)
	}
}

// NoteSent records a message this processor originated, so it can answer
// RetransmitRequests for its own messages. Sequence numbers must be
// allocated contiguously by the caller. raw may be nil for messages sent
// inside a Packed container; a standalone encoding is produced lazily
// from msg if the message ever needs to be retransmitted.
func (l *Layer) NoteSent(seq ids.SeqNum, ts ids.Timestamp, raw []byte, msg wire.Message) {
	s := l.source(l.self)
	s.retain(&Held{Seq: seq, TS: ts, Raw: raw, Msg: msg})
	if seq > s.highestSeen {
		s.highestSeen = seq
	}
	s.nextDeliver = s.highestSeen + 1
}

// Receive processes one reliable message (Regular, Connect, AddProcessor,
// RemoveProcessor, Suspect or Membership) from the network. It returns
// the messages that became deliverable in source order, which may be
// empty (gap) or include earlier buffered messages.
func (l *Layer) Receive(msg wire.Message, raw []byte, now int64) []*Held {
	h := msg.Header
	if h.Source == l.self {
		// Own multicast looped back (or retransmitted by a peer).
		return nil
	}
	s := l.source(h.Source)
	if h.Seq > s.highestSeen {
		s.highestSeen = h.Seq
	}
	if h.Seq < s.nextDeliver {
		l.stats.Duplicates++
		l.updateNack(s, now)
		return nil
	}
	if _, dup := s.pending[h.Seq]; dup {
		l.stats.Duplicates++
		return nil
	}
	held := &Held{Seq: h.Seq, TS: h.MsgTS, Raw: raw, Msg: msg}
	s.pending[h.Seq] = held
	l.stats.Received++
	if h.Seq != s.nextDeliver {
		l.stats.OutOfOrder++
	}

	var out []*Held
	for {
		next, ok := s.pending[s.nextDeliver]
		if !ok {
			break
		}
		delete(s.pending, s.nextDeliver)
		s.retain(next)
		s.nextDeliver++
		out = append(out, next)
	}
	l.updateNack(s, now)
	return out
}

// NoteHeartbeatSeq records the sequence number carried in an unreliable
// message's header: the sender's most recent reliable message. A gap
// becomes detectable even when the missing message itself was the last
// one sent. It reports whether this processor has received every
// reliable message from p up to and including that sequence number
// (i.e. whether the heartbeat's timestamps are trustworthy for ordering).
func (l *Layer) NoteHeartbeatSeq(p ids.ProcessorID, seq ids.SeqNum, now int64) bool {
	if p == l.self {
		return true
	}
	s := l.source(p)
	if seq > s.highestSeen {
		s.highestSeen = seq
	}
	l.updateNack(s, now)
	return s.nextDeliver > seq
}

// Contiguous returns the highest sequence number s such that every
// message from p with sequence number <= s has been received here.
func (l *Layer) Contiguous(p ids.ProcessorID) ids.SeqNum {
	return l.source(p).nextDeliver - 1
}

// SeqVector returns the contiguously received sequence number for each
// processor in members, as cited in Membership and AddProcessor bodies.
func (l *Layer) SeqVector(members ids.Membership) wire.SeqVector {
	v := make(wire.SeqVector, 0, len(members))
	for _, p := range members {
		v = append(v, wire.SeqEntry{Proc: p, Seq: l.Contiguous(p)})
	}
	return v
}

// updateNack re-evaluates gap state for s and schedules or clears the
// NACK timer.
func (l *Layer) updateNack(s *sourceState, now int64) {
	if s.nextDeliver > s.highestSeen {
		// No gap.
		s.nackAt = 0
		return
	}
	if s.nackAt == 0 {
		at := now + l.cfg.NackDelay
		if at == 0 {
			at = 1 // zero is the "unscheduled" sentinel
		}
		s.nackAt = at
		s.nackEvery = l.cfg.NackInterval
	}
}

// missingRanges appends the gaps for source s as inclusive [start, stop]
// ranges, bounded by highestSeen, to out (a reused scratch slice).
func (s *sourceState) missingRanges(out []wire.RetransmitRequest) []wire.RetransmitRequest {
	start := ids.SeqNum(0)
	inGap := false
	for q := s.nextDeliver; q <= s.highestSeen; q++ {
		_, have := s.pending[q]
		if !have && !inGap {
			start, inGap = q, true
		}
		if have && inGap {
			out = append(out, wire.RetransmitRequest{StartSeq: start, StopSeq: q - 1})
			inGap = false
		}
	}
	if inGap {
		out = append(out, wire.RetransmitRequest{StartSeq: start, StopSeq: s.highestSeen})
	}
	return out
}

// NacksDue returns the RetransmitRequest bodies that should be multicast
// at time now, applying exponential backoff per source. The caller wraps
// them in headers and transmits them. The returned slice is reused: its
// contents are valid only until the next NacksDue call on this layer.
func (l *Layer) NacksDue(now int64) []wire.RetransmitRequest {
	out := l.nackScratch[:0]
	// l.procs keeps sources in ascending id order: deterministic iteration
	// for reproducible simulation, with no per-call sort.
	for _, p := range l.procs {
		s := l.sources[p]
		if s.nackAt == 0 || now < s.nackAt {
			continue
		}
		mark := len(out)
		out = s.missingRanges(out)
		ranges := out[mark:]
		if len(ranges) == 0 {
			s.nackAt = 0
			continue
		}
		for i := range ranges {
			ranges[i].Proc = p
			l.stats.NacksSent++
		}
		s.nackAt = now + s.nackEvery
		if s.nackEvery < l.cfg.NackMaxInterval {
			s.nackEvery *= 2
			if s.nackEvery > l.cfg.NackMaxInterval {
				s.nackEvery = l.cfg.NackMaxInterval
			}
		}
	}
	l.nackScratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// Answer returns the raw encodings this processor should retransmit in
// response to req. Per the paper, any processor that has a requested
// message may retransmit it; to avoid multiplying every repair by the
// group size, the policy here is that the original source answers, and
// other holders answer only when mayAnswerForSource reports that the
// source cannot (it is suspected, convicted, or no longer a member).
// The returned encodings are the original bytes; the caller flips the
// retransmission flag before transmitting.
func (l *Layer) Answer(req *wire.RetransmitRequest, mayAnswerForSource func(ids.ProcessorID) bool) [][]byte {
	if req.Proc != l.self {
		if mayAnswerForSource == nil || !mayAnswerForSource(req.Proc) {
			return nil
		}
	}
	s, ok := l.sources[req.Proc]
	if !ok {
		return nil
	}
	if req.StopSeq < req.StartSeq {
		return nil
	}
	var out [][]byte
	for q := req.StartSeq; q <= req.StopSeq; q++ {
		h, ok := s.retained[q]
		if !ok {
			h, ok = s.pending[q]
		}
		if ok {
			if raw := h.encoding(); raw != nil {
				out = append(out, raw)
				l.stats.Retransmissions++
			}
		}
		if q == req.StopSeq { // guard uint32 wrap on StopSeq == MaxUint32
			break
		}
	}
	return out
}

// MarkRetransmission rewrites the retransmission flag in an encoded FTMP
// message without re-encoding the body ("retransmission is ... true for
// all subsequent retransmissions", paper section 3.2).
func MarkRetransmission(raw []byte) []byte {
	out := make([]byte, len(raw))
	copy(out, raw)
	if len(out) > 6 {
		out[6] |= 0x02
	}
	return out
}

// DiscardStable reclaims buffer space for retained messages whose
// timestamps are <= stable: every group member has acknowledged them, so
// no RetransmitRequest for them can arrive (paper sections 3.2 and 6).
func (l *Layer) DiscardStable(stable ids.Timestamp) {
	for _, s := range l.sources {
		// retMinTS lower-bounds every retained timestamp, so a source
		// whose oldest message is still unstable is skipped without
		// scanning its buffer — the common case on a healthy group, where
		// this turns the per-pump full scan into a handful of compares.
		if !s.retMinValid || s.retMinTS > stable {
			continue
		}
		newMin := ids.Timestamp(0)
		newMinValid := false
		for q, h := range s.retained {
			if h.TS <= stable {
				delete(s.retained, q)
				l.stats.DiscardedStable++
			} else if !newMinValid || h.TS < newMin {
				newMin, newMinValid = h.TS, true
			}
		}
		s.retMinTS, s.retMinValid = newMin, newMinValid
	}
}

// Buffered returns the number of messages currently held (pending plus
// retained) across all sources, for the buffer-management experiments.
func (l *Layer) Buffered() int {
	n := 0
	for _, s := range l.sources {
		n += len(s.pending) + len(s.retained)
	}
	return n
}

// HasGap reports whether delivery from p is currently blocked by a gap.
func (l *Layer) HasGap(p ids.ProcessorID) bool {
	s, ok := l.sources[p]
	if !ok {
		return false
	}
	return s.nextDeliver <= s.highestSeen
}

// String summarizes the layer for debugging.
func (l *Layer) String() string {
	return fmt.Sprintf("rmp(%v@%v, %d sources, %d buffered)", l.self, l.group, len(l.sources), l.Buffered())
}
