package rmp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

const (
	self  = ids.ProcessorID(1)
	peer  = ids.ProcessorID(2)
	group = ids.GroupID(10)
)

// mk builds an encoded Regular message from src with the given seq.
func mk(t *testing.T, src ids.ProcessorID, seq ids.SeqNum, payload string) (wire.Message, []byte) {
	t.Helper()
	h := wire.Header{
		Source:    src,
		DestGroup: group,
		Seq:       seq,
		MsgTS:     ids.MakeTimestamp(uint64(seq)*10, src),
		AckTS:     ids.NilTimestamp,
	}
	raw, err := wire.Encode(h, &wire.Regular{Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := wire.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	return m, raw
}

func newLayer() *Layer { return New(self, group, DefaultConfig()) }

func TestInOrderDelivery(t *testing.T) {
	l := newLayer()
	for i := ids.SeqNum(1); i <= 5; i++ {
		m, raw := mk(t, peer, i, "x")
		out := l.Receive(m, raw, 0)
		if len(out) != 1 || out[0].Seq != i {
			t.Fatalf("seq %d: delivered %v", i, out)
		}
	}
	if got := l.Contiguous(peer); got != 5 {
		t.Errorf("Contiguous = %d, want 5", got)
	}
}

func TestGapBuffersThenFlushes(t *testing.T) {
	l := newLayer()
	m1, r1 := mk(t, peer, 1, "a")
	m3, r3 := mk(t, peer, 3, "c")
	m2, r2 := mk(t, peer, 2, "b")

	if out := l.Receive(m1, r1, 0); len(out) != 1 {
		t.Fatalf("seq1: %v", out)
	}
	if out := l.Receive(m3, r3, 0); len(out) != 0 {
		t.Fatalf("seq3 delivered across gap: %v", out)
	}
	if !l.HasGap(peer) {
		t.Error("gap not detected")
	}
	out := l.Receive(m2, r2, 0)
	if len(out) != 2 || out[0].Seq != 2 || out[1].Seq != 3 {
		t.Fatalf("gap fill delivered %v", out)
	}
	if l.HasGap(peer) {
		t.Error("gap not cleared")
	}
	if l.Stats().OutOfOrder != 1 {
		t.Errorf("OutOfOrder = %d, want 1", l.Stats().OutOfOrder)
	}
}

func TestDuplicatesDropped(t *testing.T) {
	l := newLayer()
	m, raw := mk(t, peer, 1, "a")
	l.Receive(m, raw, 0)
	if out := l.Receive(m, raw, 0); out != nil {
		t.Errorf("duplicate delivered: %v", out)
	}
	// Duplicate of a pending (not yet delivered) message.
	m3, r3 := mk(t, peer, 3, "c")
	l.Receive(m3, r3, 0)
	if out := l.Receive(m3, r3, 0); out != nil {
		t.Errorf("pending duplicate delivered: %v", out)
	}
	if l.Stats().Duplicates != 2 {
		t.Errorf("Duplicates = %d, want 2", l.Stats().Duplicates)
	}
}

func TestOwnLoopbackIgnored(t *testing.T) {
	l := newLayer()
	m, raw := mk(t, self, 1, "me")
	if out := l.Receive(m, raw, 0); out != nil {
		t.Errorf("own message delivered via network: %v", out)
	}
}

func TestNackScheduling(t *testing.T) {
	cfg := Config{NackDelay: 10, NackInterval: 100, NackMaxInterval: 400}
	l := New(self, group, cfg)
	m3, r3 := mk(t, peer, 3, "c")
	l.Receive(m3, r3, 1000)

	if got := l.NacksDue(1005); got != nil {
		t.Errorf("NACK before delay: %v", got)
	}
	got := l.NacksDue(1010)
	if len(got) != 1 || got[0].Proc != peer || got[0].StartSeq != 1 || got[0].StopSeq != 2 {
		t.Fatalf("NacksDue = %+v", got)
	}
	// Backoff: next at 1010+100, then interval doubles.
	if got := l.NacksDue(1050); got != nil {
		t.Errorf("NACK re-fired early: %v", got)
	}
	got = l.NacksDue(1110)
	if len(got) != 1 {
		t.Fatalf("second NACK missing")
	}
	got = l.NacksDue(1110 + 200)
	if len(got) != 1 {
		t.Fatalf("third NACK missing (backoff x2)")
	}
	// Interval caps at NackMaxInterval.
	got = l.NacksDue(1310 + 400)
	if len(got) != 1 {
		t.Fatalf("fourth NACK missing (capped backoff)")
	}
}

func TestNackClearsWhenGapFills(t *testing.T) {
	cfg := Config{NackDelay: 10, NackInterval: 100, NackMaxInterval: 400}
	l := New(self, group, cfg)
	m2, r2 := mk(t, peer, 2, "b")
	l.Receive(m2, r2, 0)
	m1, r1 := mk(t, peer, 1, "a")
	l.Receive(m1, r1, 5)
	if got := l.NacksDue(1000); got != nil {
		t.Errorf("NACK after gap filled: %v", got)
	}
}

func TestNackFromHeartbeatSeq(t *testing.T) {
	cfg := Config{NackDelay: 10, NackInterval: 100, NackMaxInterval: 400}
	l := New(self, group, cfg)
	// Heartbeat says peer has sent up to seq 2; we have nothing.
	trusted := l.NoteHeartbeatSeq(peer, 2, 0)
	if trusted {
		t.Error("heartbeat trusted despite missing messages")
	}
	got := l.NacksDue(10)
	if len(got) != 1 || got[0].StartSeq != 1 || got[0].StopSeq != 2 {
		t.Fatalf("NacksDue = %+v", got)
	}
	// After receiving both, the heartbeat becomes trustworthy.
	m1, r1 := mk(t, peer, 1, "a")
	m2, r2 := mk(t, peer, 2, "b")
	l.Receive(m1, r1, 20)
	l.Receive(m2, r2, 20)
	if !l.NoteHeartbeatSeq(peer, 2, 21) {
		t.Error("heartbeat untrusted after recovery")
	}
}

func TestMultipleMissingRanges(t *testing.T) {
	cfg := Config{NackDelay: 0, NackInterval: 100, NackMaxInterval: 400}
	l := New(self, group, cfg)
	for _, s := range []ids.SeqNum{2, 5} {
		m, raw := mk(t, peer, s, "x")
		l.Receive(m, raw, 0)
	}
	got := l.NacksDue(1)
	if len(got) != 2 {
		t.Fatalf("NacksDue = %+v, want 2 ranges", got)
	}
	if got[0].StartSeq != 1 || got[0].StopSeq != 1 || got[1].StartSeq != 3 || got[1].StopSeq != 4 {
		t.Errorf("ranges = %+v", got)
	}
}

func TestAnswerPolicySourceOnly(t *testing.T) {
	l := newLayer()
	m1, r1 := mk(t, peer, 1, "a")
	l.Receive(m1, r1, 0)

	req := &wire.RetransmitRequest{Proc: peer, StartSeq: 1, StopSeq: 1}
	// We are not the source and the source is healthy: stay silent.
	if out := l.Answer(req, func(ids.ProcessorID) bool { return false }); out != nil {
		t.Errorf("answered for healthy source: %d msgs", len(out))
	}
	// Source deemed unable to answer: we step in.
	out := l.Answer(req, func(p ids.ProcessorID) bool { return p == peer })
	if len(out) != 1 {
		t.Fatalf("Answer = %d msgs, want 1", len(out))
	}
	if string(out[0]) == "" {
		t.Error("empty retransmission")
	}
}

func TestAnswerOwnMessages(t *testing.T) {
	l := newLayer()
	m, raw := mk(t, self, 7, "mine")
	l.NoteSent(7, m.Header.MsgTS, raw, m)
	req := &wire.RetransmitRequest{Proc: self, StartSeq: 7, StopSeq: 7}
	out := l.Answer(req, nil)
	if len(out) != 1 {
		t.Fatalf("own-message Answer = %d, want 1", len(out))
	}
}

func TestAnswerLazilyEncodesPackedSends(t *testing.T) {
	// Messages sent inside a Packed container are noted with Raw == nil;
	// Answer must synthesize (and memoize) the standalone encoding so a
	// repair delivers a normal Regular that any 1.0 receiver can decode.
	l := newLayer()
	m, _ := mk(t, self, 3, "packed-entry")
	l.NoteSent(3, m.Header.MsgTS, nil, m)
	req := &wire.RetransmitRequest{Proc: self, StartSeq: 3, StopSeq: 3}
	out := l.Answer(req, nil)
	if len(out) != 1 {
		t.Fatalf("lazy Answer = %d msgs, want 1", len(out))
	}
	dec, err := wire.Decode(out[0])
	if err != nil {
		t.Fatalf("lazy encoding undecodable: %v", err)
	}
	reg, ok := dec.Body.(*wire.Regular)
	if !ok || string(reg.Payload) != "packed-entry" {
		t.Fatalf("lazy encoding = %T %v", dec.Body, dec.Body)
	}
	if dec.Header.Seq != 3 || dec.Header.MsgTS != m.Header.MsgTS {
		t.Fatalf("lazy encoding header = %+v", dec.Header)
	}
	// Second answer reuses the memoized bytes.
	out2 := l.Answer(req, nil)
	if len(out2) != 1 || &out2[0][0] != &out[0][0] {
		t.Error("second Answer re-encoded instead of reusing the memoized raw")
	}
}

func TestAnswerFromPendingBuffer(t *testing.T) {
	l := newLayer()
	// seq 2 held in pending (gap at 1); a peer that got 2 but lost
	// nothing asks... actually the requester wants 2 and the source is
	// down; we hold it only in pending.
	m2, r2 := mk(t, peer, 2, "b")
	l.Receive(m2, r2, 0)
	req := &wire.RetransmitRequest{Proc: peer, StartSeq: 2, StopSeq: 2}
	out := l.Answer(req, func(ids.ProcessorID) bool { return true })
	if len(out) != 1 {
		t.Fatalf("pending Answer = %d, want 1", len(out))
	}
}

func TestAnswerInvalidRange(t *testing.T) {
	l := newLayer()
	req := &wire.RetransmitRequest{Proc: peer, StartSeq: 5, StopSeq: 2}
	if out := l.Answer(req, func(ids.ProcessorID) bool { return true }); out != nil {
		t.Error("inverted range produced retransmissions")
	}
	req2 := &wire.RetransmitRequest{Proc: ids.ProcessorID(99), StartSeq: 1, StopSeq: 1}
	if out := l.Answer(req2, func(ids.ProcessorID) bool { return true }); out != nil {
		t.Error("unknown source produced retransmissions")
	}
}

func TestMarkRetransmission(t *testing.T) {
	_, raw := mk(t, peer, 1, "a")
	out := MarkRetransmission(raw)
	m, err := wire.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Header.Retransmission {
		t.Error("retransmission flag not set")
	}
	// Original untouched.
	orig, err := wire.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Header.Retransmission {
		t.Error("MarkRetransmission mutated its input")
	}
}

func TestDiscardStable(t *testing.T) {
	l := newLayer()
	for i := ids.SeqNum(1); i <= 4; i++ {
		m, raw := mk(t, peer, i, "x")
		l.Receive(m, raw, 0)
	}
	if l.Buffered() != 4 {
		t.Fatalf("Buffered = %d, want 4", l.Buffered())
	}
	// mk assigns ts = seq*10; stabilize through seq 2.
	l.DiscardStable(ids.MakeTimestamp(25, peer))
	if l.Buffered() != 2 {
		t.Errorf("Buffered after discard = %d, want 2", l.Buffered())
	}
	// Stable messages can no longer be retransmitted.
	req := &wire.RetransmitRequest{Proc: peer, StartSeq: 1, StopSeq: 4}
	out := l.Answer(req, func(ids.ProcessorID) bool { return true })
	if len(out) != 2 {
		t.Errorf("Answer after discard = %d, want 2", len(out))
	}
}

func TestSetBaseline(t *testing.T) {
	l := newLayer()
	l.SetBaseline(peer, 10)
	if got := l.Contiguous(peer); got != 10 {
		t.Errorf("Contiguous = %d, want 10", got)
	}
	// Old message before the baseline is a duplicate.
	m, raw := mk(t, peer, 9, "old")
	if out := l.Receive(m, raw, 0); out != nil {
		t.Error("pre-baseline message delivered")
	}
	// Next expected delivers immediately.
	m11, r11 := mk(t, peer, 11, "new")
	if out := l.Receive(m11, r11, 0); len(out) != 1 {
		t.Error("post-baseline message not delivered")
	}
	// Baseline never moves backwards.
	l.SetBaseline(peer, 3)
	if got := l.Contiguous(peer); got != 11 {
		t.Errorf("baseline moved backwards: %d", got)
	}
}

func TestDropSource(t *testing.T) {
	l := newLayer()
	m2, r2 := mk(t, peer, 2, "b")
	l.Receive(m2, r2, 0)
	l.DropSource(peer)
	if l.NacksDue(1<<40) != nil {
		t.Error("dropped source still produces NACKs")
	}
}

func TestSeqVector(t *testing.T) {
	l := newLayer()
	m1, r1 := mk(t, peer, 1, "a")
	l.Receive(m1, r1, 0)
	v := l.SeqVector(ids.NewMembership(self, peer))
	if len(v) != 2 {
		t.Fatalf("SeqVector len = %d", len(v))
	}
	if s, _ := v.Get(peer); s != 1 {
		t.Errorf("peer contiguous = %d, want 1", s)
	}
	if s, _ := v.Get(self); s != 0 {
		t.Errorf("self contiguous = %d, want 0", s)
	}
}

func TestSourceOrderUnderRandomArrivalProperty(t *testing.T) {
	// Property: for any arrival permutation with duplicates, RMP delivers
	// exactly seq 1..n in order.
	f := func(order []uint8) bool {
		const n = 12
		l := newLayer()
		msgs := make(map[ids.SeqNum][2]any)
		for i := ids.SeqNum(1); i <= n; i++ {
			m, raw := mkQuiet(i)
			msgs[i] = [2]any{m, raw}
		}
		var delivered []ids.SeqNum
		feed := func(s ids.SeqNum) {
			pair := msgs[s]
			for _, h := range l.Receive(pair[0].(wire.Message), pair[1].([]byte), 0) {
				delivered = append(delivered, h.Seq)
			}
		}
		for _, o := range order {
			feed(ids.SeqNum(o%n) + 1)
		}
		for i := ids.SeqNum(1); i <= n; i++ { // ensure completion
			feed(i)
		}
		if len(delivered) != n {
			return false
		}
		for i, s := range delivered {
			if s != ids.SeqNum(i+1) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// mkQuiet is mk without the testing.T, for property functions.
func mkQuiet(seq ids.SeqNum) (wire.Message, []byte) {
	h := wire.Header{
		Source:    peer,
		DestGroup: group,
		Seq:       seq,
		MsgTS:     ids.MakeTimestamp(uint64(seq)*10, peer),
	}
	raw, err := wire.Encode(h, &wire.Regular{Payload: []byte{byte(seq)}})
	if err != nil {
		panic(err)
	}
	m, err := wire.Decode(raw)
	if err != nil {
		panic(err)
	}
	return m, raw
}

func TestStringer(t *testing.T) {
	l := newLayer()
	if l.String() == "" {
		t.Error("empty String()")
	}
}
