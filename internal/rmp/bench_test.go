package rmp

import (
	"testing"

	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

// BenchmarkReceiveInOrder measures the per-message cost of the RMP hot
// path: in-order receive, immediate delivery, stability reclaim.
func BenchmarkReceiveInOrder(b *testing.B) {
	h := wire.Header{Source: peer, DestGroup: group, Seq: 1, MsgTS: ids.MakeTimestamp(1, peer)}
	raw, err := wire.Encode(h, &wire.Regular{Payload: make([]byte, 256)})
	if err != nil {
		b.Fatal(err)
	}
	msg, err := wire.Decode(raw)
	if err != nil {
		b.Fatal(err)
	}
	l := New(self, group, DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := ids.SeqNum(i + 1)
		msg.Header.Seq = seq
		msg.Header.MsgTS = ids.MakeTimestamp(uint64(i+1), peer)
		out := l.Receive(msg, raw, int64(i))
		if len(out) != 1 {
			b.Fatalf("iteration %d delivered %d", i, len(out))
		}
		// Reclaim immediately: steady-state buffer behaviour.
		l.DiscardStable(msg.Header.MsgTS)
	}
}

// BenchmarkReceiveOutOfOrder measures gap buffering and flush: pairs of
// messages arrive reversed.
func BenchmarkReceiveOutOfOrder(b *testing.B) {
	h := wire.Header{Source: peer, DestGroup: group}
	raw, err := wire.Encode(h, &wire.Regular{Payload: make([]byte, 256)})
	if err != nil {
		b.Fatal(err)
	}
	msg, err := wire.Decode(raw)
	if err != nil {
		b.Fatal(err)
	}
	l := New(self, group, DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := ids.SeqNum(2*i + 1)
		m2 := msg
		m2.Header.Seq = base + 1
		m2.Header.MsgTS = ids.MakeTimestamp(uint64(2*i+2), peer)
		l.Receive(m2, raw, int64(i))
		m1 := msg
		m1.Header.Seq = base
		m1.Header.MsgTS = ids.MakeTimestamp(uint64(2*i+1), peer)
		out := l.Receive(m1, raw, int64(i))
		if len(out) != 2 {
			b.Fatalf("flush delivered %d", len(out))
		}
		l.DiscardStable(m2.Header.MsgTS)
	}
}
