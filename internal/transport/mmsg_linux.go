//go:build linux && (amd64 || arm64)

package transport

// The genuine kernel-batched path: sendmmsg(2)/recvmmsg(2) through raw
// syscall numbers. The standard library's syscall package predates
// sendmmsg (its linux tables were frozen at recvmmsg), and this module
// deliberately has no dependency on golang.org/x/sys, so the two
// syscall numbers live in per-arch files (mmsg_sysnum_*.go) and the
// mmsghdr layout — identical on the 64-bit linux ports — is declared
// here. Everything funnels through the net.UDPConn's RawConn so the
// runtime netpoller still owns readiness: a would-block return parks
// the goroutine instead of spinning.

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// mmsgArch: this platform compiles the vectored syscalls in.
const mmsgArch = true

// mmsghdr is struct mmsghdr from socket(7): a msghdr plus the kernel's
// per-entry transfer count. The trailing pad keeps the 8-byte stride
// the kernel expects on 64-bit ports.
type mmsghdr struct {
	hdr  syscall.Msghdr
	nfer uint32
	_    [4]byte
}

// rawSendmmsg hands frames to the kernel in one sendmmsg call and
// returns how many datagrams it accepted. A nil frame destination uses
// the socket's connected peer; otherwise the IPv4 destination is
// attached per-entry, so one unconnected socket fans a vector out
// across many peers in a single crossing.
func rawSendmmsg(conn *net.UDPConn, frames []outFrame) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	vec := make([]mmsghdr, len(frames))
	iovs := make([]syscall.Iovec, len(frames))
	sas := make([]syscall.RawSockaddrInet4, len(frames))
	for i := range frames {
		f := &frames[i]
		if len(f.data) == 0 {
			// A zero-length UDP datagram is legal; point at the pad byte
			// so the iovec base is never nil.
			iovs[i].Base = &sas[i].Zero[0]
			iovs[i].Len = 0
		} else {
			iovs[i].Base = &f.data[0]
			iovs[i].SetLen(len(f.data))
		}
		vec[i].hdr.Iov = &iovs[i]
		vec[i].hdr.Iovlen = 1
		if f.to != nil {
			sa := &sas[i]
			sa.Family = syscall.AF_INET
			p := (*[2]byte)(unsafe.Pointer(&sa.Port))
			p[0] = byte(f.to.Port >> 8)
			p[1] = byte(f.to.Port)
			copy(sa.Addr[:], f.to.IP.To4())
			vec[i].hdr.Name = (*byte)(unsafe.Pointer(sa))
			vec[i].hdr.Namelen = syscall.SizeofSockaddrInet4
		}
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return 0, err
	}
	var sent int
	var errno syscall.Errno
	werr := rc.Write(func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&vec[0])), uintptr(len(vec)), 0, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false // park on the netpoller until writable
		}
		sent, errno = int(n), e
		return true
	})
	runtime.KeepAlive(vec)
	runtime.KeepAlive(iovs)
	runtime.KeepAlive(sas)
	runtime.KeepAlive(frames)
	if werr != nil {
		return 0, werr
	}
	if errno != 0 {
		return 0, errno
	}
	return sent, nil
}

// rawRecvmmsg drains up to len(bufs) datagrams from the socket in one
// recvmmsg call, filling bufs[i] and sizes[i], and returns how many
// arrived. It blocks (on the netpoller) until at least one datagram is
// available; it never waits for the vector to fill — recvmmsg returns
// whatever the socket buffer held, which is exactly the adaptive
// batch-under-load / low-latency-when-idle behavior the receive path
// wants. Source addresses are not collected (the mesh framing carries
// the logical address; the peer's socket address is unused).
func rawRecvmmsg(conn *net.UDPConn, bufs [][]byte, sizes []int) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	vec := make([]mmsghdr, len(bufs))
	iovs := make([]syscall.Iovec, len(bufs))
	for i := range bufs {
		iovs[i].Base = &bufs[i][0]
		iovs[i].SetLen(len(bufs[i]))
		vec[i].hdr.Iov = &iovs[i]
		vec[i].hdr.Iovlen = 1
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return 0, err
	}
	var got int
	var errno syscall.Errno
	rerr := rc.Read(func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&vec[0])), uintptr(len(vec)), 0, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false // park until readable
		}
		got, errno = int(n), e
		return true
	})
	runtime.KeepAlive(vec)
	runtime.KeepAlive(iovs)
	runtime.KeepAlive(bufs)
	if rerr != nil {
		return 0, rerr
	}
	if errno != 0 {
		return 0, errno
	}
	for i := 0; i < got; i++ {
		sizes[i] = int(vec[i].nfer)
	}
	return got, nil
}
