package transport

import (
	"net"
	"sync/atomic"
	"syscall"

	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// This file is the portable half of the kernel-batched datapath: the
// batch types, the syscall/batch-efficiency counters and the vectored
// send driver. The per-platform halves (mmsg_linux.go and
// mmsg_fallback.go) provide rawSendmmsg/rawRecvmmsg — genuine
// sendmmsg(2)/recvmmsg(2) on linux/amd64 and linux/arm64, a
// single-syscall-per-datagram emulation everywhere else — behind one
// signature, so every caller above this line is platform-independent.

// Datagram is one logical multicast send queued for batching: the
// payload and the logical address it is addressed to. The transport
// owns neither; Data must stay untouched until SendBatch returns
// (the kernel copies it out synchronously, as with Send).
type Datagram struct {
	Addr wire.MulticastAddr
	Data []byte
}

// BatchSender is implemented by transports that can hand several
// datagrams to the kernel in fewer syscalls. Frames for any single
// destination are sent in slice order (per-destination FIFO), exactly
// as the same sequence of Send calls would.
type BatchSender interface {
	SendBatch(items []Datagram) error
}

// outFrame is one wire datagram bound for one socket destination: a
// logical Datagram expanded across the mesh's peer set.
type outFrame struct {
	data []byte
	to   *net.UDPAddr // nil: connected socket
}

// mmsgOK records whether the vectored syscalls are usable at runtime.
// Compiled-in support (mmsgArch) can still be refused by the kernel or
// a seccomp filter with ENOSYS/EPERM; the first refusal downgrades the
// process permanently to the single-syscall path — batching then costs
// nothing but also saves nothing, it never breaks delivery.
var mmsgDowngraded atomic.Bool

// useMMsg reports whether vectored syscalls should be attempted.
func useMMsg() bool { return mmsgArch && !mmsgDowngraded.Load() }

// noteMMsgUnsupported records a kernel refusal of the vectored path.
func noteMMsgUnsupported() {
	if !mmsgDowngraded.Swap(true) {
		trace.Inc("transport.mmsg_downgrades")
	}
}

// mmsgUnsupported classifies errors that mean "this kernel will never
// accept the vectored call" as opposed to a transient send failure.
func mmsgUnsupported(err error) bool {
	return err == syscall.ENOSYS || err == syscall.EOPNOTSUPP || err == syscall.EPERM
}

// noteBatch feeds the batch-size histogram: one bucket counter per
// power-of-two size class, so /stats can show how full the vectors ran
// without a full histogram datatype. prefix is "tx" or "rx".
func noteBatch(prefix string, n int) {
	var bucket string
	switch {
	case n <= 1:
		bucket = "_batch_le_1"
	case n <= 2:
		bucket = "_batch_le_2"
	case n <= 4:
		bucket = "_batch_le_4"
	case n <= 8:
		bucket = "_batch_le_8"
	case n <= 16:
		bucket = "_batch_le_16"
	case n <= 32:
		bucket = "_batch_le_32"
	default:
		bucket = "_batch_gt_32"
	}
	trace.Inc("transport." + prefix + bucket)
}

// rawSendFunc is the platform vector-send hook: it hands up to
// len(frames) datagrams to the kernel and returns how many the kernel
// accepted (in order). Injectable so the resume logic below is testable
// without forcing real short counts out of a kernel.
type rawSendFunc func(conn *net.UDPConn, frames []outFrame) (int, error)

// vectorSend drives frames through send (rawSendmmsg in production) in
// chunks of at most vec, resuming after short counts: sendmmsg may
// accept fewer datagrams than offered (a full socket buffer mid-vector)
// and the unsent tail must go out next call, in order, exactly once.
// A kernel that refuses the vectored call entirely (ENOSYS under
// seccomp, EPERM) downgrades the process to the single-syscall path and
// finishes the batch there. Other errors skip the offending frame —
// the same "record and keep going" contract as per-peer Send errors —
// and the first one is returned.
func vectorSend(conn *net.UDPConn, frames []outFrame, vec int, send rawSendFunc) error {
	if vec < 1 {
		vec = 1
	}
	var firstErr error
	for len(frames) > 0 {
		if !useMMsg() {
			// Downgraded (possibly mid-batch): finish frame by frame.
			for _, f := range frames {
				if err := sendOne(conn, f); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return firstErr
		}
		chunk := frames
		if len(chunk) > vec {
			chunk = chunk[:vec]
		}
		sent, err := send(conn, chunk)
		trace.Inc("transport.tx_sendmmsg_calls")
		trace.Inc("transport.tx_syscalls")
		if sent > 0 {
			trace.Count("transport.tx_frames", uint64(sent))
			noteBatch("tx", sent)
		}
		frames = frames[sent:]
		if err != nil {
			if mmsgUnsupported(err) {
				noteMMsgUnsupported()
				continue // retried on the downgraded path above
			}
			if firstErr == nil {
				firstErr = err
			}
			if sent == 0 && len(frames) > 0 {
				// The head frame is the poison (unroutable peer, oversize
				// datagram): skip it or the loop spins forever.
				frames = frames[1:]
				trace.Inc("transport.tx_frame_errors")
			}
		}
	}
	return firstErr
}

// sendOne is the single-datagram path shared by the legacy Send and the
// downgraded batch path, with the syscall counters every path feeds.
func sendOne(conn *net.UDPConn, f outFrame) error {
	var err error
	if f.to != nil {
		_, err = conn.WriteToUDP(f.data, f.to)
	} else {
		_, err = conn.Write(f.data)
	}
	trace.Inc("transport.tx_syscalls")
	if err == nil {
		trace.Inc("transport.tx_frames")
	}
	return err
}

// recvArena amortizes the per-datagram allocation the handler contract
// forces on the receive path. HandlePacket takes ownership of the
// buffer it is handed — reliable-message payloads alias it while RMP
// buffers them — so the transport can never reclaim delivered buffers
// into a pool; what it CAN do is stop paying one allocator round trip
// per datagram by carving exact-size buffers out of a slab and letting
// the garbage collector free each slab when the last delivery cut from
// it dies. One arena per reader goroutine: no locks.
type recvArena struct {
	slab []byte
}

// arenaSlab is the slab size; at the typical few-hundred-byte FTMP
// datagram one allocation now covers hundreds of deliveries.
const arenaSlab = 64 * 1024

// take returns an owned buffer of exactly n bytes (full capacity n, so
// an append by the owner cannot bleed into the next carve).
func (a *recvArena) take(n int) []byte {
	if n > arenaSlab/2 {
		// Oversize carve: give it its own allocation rather than burning
		// most of a slab.
		return make([]byte, n)
	}
	if n > len(a.slab) {
		a.slab = make([]byte, arenaSlab)
	}
	b := a.slab[:n:n]
	a.slab = a.slab[n:]
	return b
}
