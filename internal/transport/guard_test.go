package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"ftmp/internal/trace"
)

func TestRetryGuardClosedIsSilent(t *testing.T) {
	var fatal error
	g := RetryGuard{OnFatal: func(err error) { fatal = err }, Sleep: func(time.Duration) {}}
	if g.Admit(net.ErrClosed) {
		t.Error("Admit(ErrClosed) = true, want exit")
	}
	wrapped := &net.OpError{Op: "read", Err: net.ErrClosed}
	if g.Admit(wrapped) {
		t.Error("Admit(wrapped ErrClosed) = true, want exit")
	}
	if fatal != nil {
		t.Errorf("closure reported as fatal: %v", fatal)
	}
}

func TestRetryGuardRetriesThenEscalates(t *testing.T) {
	trace.ResetCounters()
	var fatal error
	var slept []time.Duration
	g := RetryGuard{
		Name:    "test loop",
		Counter: "test.read",
		OnFatal: func(err error) { fatal = err },
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	transient := errors.New("no buffer space available")
	for i := 1; i < fatalThreshold; i++ {
		if !g.Admit(transient) {
			t.Fatalf("error %d treated as fatal", i)
		}
	}
	if fatal != nil {
		t.Fatalf("fatal fired before threshold: %v", fatal)
	}
	if g.Admit(transient) {
		t.Error("error at threshold should exit the loop")
	}
	if fatal == nil || !errors.Is(fatal, transient) {
		t.Fatalf("OnFatal error = %v, want wrap of transient", fatal)
	}
	// Backoff doubles from 1ms and caps at 100ms.
	if slept[0] != retryBase {
		t.Errorf("first sleep %v, want %v", slept[0], retryBase)
	}
	if slept[1] != 2*retryBase {
		t.Errorf("second sleep %v, want %v", slept[1], 2*retryBase)
	}
	for _, d := range slept {
		if d > retryMax {
			t.Fatalf("sleep %v exceeds cap %v", d, retryMax)
		}
	}
	if got := trace.Counter("test.read_transient"); got != fatalThreshold {
		t.Errorf("transient counter = %d, want %d", got, fatalThreshold)
	}
	if got := trace.Counter("test.read_fatal"); got != 1 {
		t.Errorf("fatal counter = %d, want 1", got)
	}
}

func TestRetryGuardOKResetsStreak(t *testing.T) {
	g := RetryGuard{Counter: "test.reset", Sleep: func(time.Duration) {}}
	transient := errors.New("transient")
	for i := 0; i < 10; i++ {
		g.Admit(transient)
	}
	g.OK()
	if g.streak != 0 || g.delay != 0 {
		t.Errorf("OK left streak=%d delay=%v", g.streak, g.delay)
	}
}
