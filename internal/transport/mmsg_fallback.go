//go:build !linux || !(amd64 || arm64)

package transport

// The portable fallback: no vectored syscalls on this platform, so the
// batched paths degrade to one syscall per datagram with identical
// semantics. Batching stays enableable everywhere — it just stops
// saving kernel crossings — which keeps the flag matrix and the tests
// uniform across platforms (darwin development boxes, CI sandboxes
// whose seccomp policy forbids the raw syscalls, 32-bit ports).

import "net"

// mmsgArch: vectored syscalls are not compiled in; useMMsg() is false
// and every batch goes through the single-syscall path.
const mmsgArch = false

// rawSendmmsg is never reached (useMMsg() gates every call site); it
// exists so the platform-independent half compiles unchanged.
func rawSendmmsg(conn *net.UDPConn, frames []outFrame) (int, error) {
	var firstErr error
	sent := 0
	for _, f := range frames {
		if err := sendOne(conn, f); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// rawRecvmmsg emulates the vectored receive with a single blocking
// read: one datagram per call, exactly the legacy loop's behavior.
func rawRecvmmsg(conn *net.UDPConn, bufs [][]byte, sizes []int) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	n, _, err := conn.ReadFromUDP(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	return 1, nil
}
