// Package transport provides real-network datagram transports for the
// FTMP stack: genuine UDP/IP multicast (the substrate the paper assumes)
// and a unicast mesh that emulates multicast where IGMP is unavailable
// (containers, CI). Both present the same interface; the FTMP node never
// knows which is underneath.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"ftmp/internal/wire"
)

// Handler receives one datagram and the logical multicast address it
// arrived on.
type Handler func(data []byte, addr wire.MulticastAddr)

// Transport is a multicast datagram service.
type Transport interface {
	// Join subscribes to a multicast address.
	Join(addr wire.MulticastAddr) error
	// Leave unsubscribes.
	Leave(addr wire.MulticastAddr) error
	// Send multicasts data to addr.
	Send(addr wire.MulticastAddr, data []byte) error
	// Close stops the transport and its reader goroutines.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// maxDatagram bounds receive buffers.
const maxDatagram = 65536

// UDPMulticast is a real IP-multicast transport: one UDP socket per
// joined group, reader goroutines feeding the handler.
type UDPMulticast struct {
	handler Handler

	mu      sync.Mutex
	conns   map[wire.MulticastAddr]*net.UDPConn
	errHook func(error)
	closed  bool
	wg      sync.WaitGroup

	// sendConns caches one connected send socket per destination so the
	// datapath does not dial (socket + bind + connect) per datagram.
	sendMu    sync.Mutex
	sendConns map[wire.MulticastAddr]*net.UDPConn
}

// SetErrorHook registers fn to receive fatal receive-loop errors (a
// reader that exhausted its retries and died). Without a hook such
// deaths are still counted (transport.read_fatal) but otherwise silent.
func (t *UDPMulticast) SetErrorHook(fn func(error)) {
	t.mu.Lock()
	t.errHook = fn
	t.mu.Unlock()
}

func (t *UDPMulticast) fatal(err error) {
	t.mu.Lock()
	fn := t.errHook
	t.mu.Unlock()
	if fn != nil {
		fn(err)
	}
}

// NewUDPMulticast creates a multicast transport delivering to handler.
func NewUDPMulticast(handler Handler) *UDPMulticast {
	return &UDPMulticast{
		handler:   handler,
		conns:     make(map[wire.MulticastAddr]*net.UDPConn),
		sendConns: make(map[wire.MulticastAddr]*net.UDPConn),
	}
}

func toUDPAddr(a wire.MulticastAddr) *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(a.IP[0], a.IP[1], a.IP[2], a.IP[3]), Port: int(a.Port)}
}

// Join implements Transport.
func (t *UDPMulticast) Join(addr wire.MulticastAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if _, ok := t.conns[addr]; ok {
		return nil
	}
	conn, err := net.ListenMulticastUDP("udp4", nil, toUDPAddr(addr))
	if err != nil {
		return fmt.Errorf("transport: join %v: %w", addr, err)
	}
	t.conns[addr] = conn
	t.wg.Add(1)
	go t.readLoop(conn, addr)
	return nil
}

func (t *UDPMulticast) readLoop(conn *net.UDPConn, addr wire.MulticastAddr) {
	defer t.wg.Done()
	guard := RetryGuard{Name: fmt.Sprintf("multicast reader %v", addr), OnFatal: t.fatal}
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			// Closure (Leave or Close) exits quietly; a transient socket
			// error must not kill the reader — missed heartbeats would
			// get this processor convicted. Retry with backoff.
			if !guard.Admit(err) {
				return
			}
			continue
		}
		guard.OK()
		data := make([]byte, n)
		copy(data, buf[:n])
		t.handler(data, addr)
	}
}

// Leave implements Transport.
func (t *UDPMulticast) Leave(addr wire.MulticastAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if conn, ok := t.conns[addr]; ok {
		delete(t.conns, addr)
		conn.Close()
	}
	return nil
}

// Send implements Transport.
func (t *UDPMulticast) Send(addr wire.MulticastAddr, data []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	t.mu.Unlock()
	t.sendMu.Lock()
	conn, ok := t.sendConns[addr]
	if !ok {
		var err error
		conn, err = net.DialUDP("udp4", nil, toUDPAddr(addr))
		if err != nil {
			t.sendMu.Unlock()
			return err
		}
		t.sendConns[addr] = conn
	}
	t.sendMu.Unlock()
	_, err := conn.Write(data)
	return err
}

// Close implements Transport.
func (t *UDPMulticast) Close() error {
	t.mu.Lock()
	t.closed = true
	conns := make([]*net.UDPConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.conns = make(map[wire.MulticastAddr]*net.UDPConn)
	t.mu.Unlock()
	t.sendMu.Lock()
	for _, c := range t.sendConns {
		conns = append(conns, c)
	}
	t.sendConns = make(map[wire.MulticastAddr]*net.UDPConn)
	t.sendMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

// meshFrame prefixes each datagram with the 6-byte logical multicast
// address so receivers can demultiplex subscriptions.
const meshFrameHeader = 6

// UDPMesh emulates IP multicast over unicast UDP: every node binds one
// socket and sends each "multicast" to every peer; receivers filter by
// joined logical address. It behaves like multicast with loopback
// enabled (the sender receives its own traffic when subscribed), which
// is what the FTMP node expects.
type UDPMesh struct {
	handler Handler

	conn  *net.UDPConn
	local *net.UDPAddr

	mu      sync.Mutex
	peers   []*net.UDPAddr
	joined  map[wire.MulticastAddr]bool
	errHook func(error)
	closed  bool
	wg      sync.WaitGroup
}

// SetErrorHook registers fn to receive fatal receive-loop errors, as
// with UDPMulticast.SetErrorHook.
func (m *UDPMesh) SetErrorHook(fn func(error)) {
	m.mu.Lock()
	m.errHook = fn
	m.mu.Unlock()
}

func (m *UDPMesh) fatal(err error) {
	m.mu.Lock()
	fn := m.errHook
	m.mu.Unlock()
	if fn != nil {
		fn(err)
	}
}

// NewUDPMesh binds a unicast socket on listenAddr (e.g. "127.0.0.1:0")
// and delivers subscribed datagrams to handler. Peers (including this
// node's own address, for loopback) are added with AddPeer.
func NewUDPMesh(listenAddr string, handler Handler) (*UDPMesh, error) {
	ua, err := net.ResolveUDPAddr("udp4", listenAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp4", ua)
	if err != nil {
		return nil, err
	}
	m := &UDPMesh{
		handler: handler,
		conn:    conn,
		local:   conn.LocalAddr().(*net.UDPAddr),
		joined:  make(map[wire.MulticastAddr]bool),
	}
	m.wg.Add(1)
	go m.readLoop()
	return m, nil
}

// LocalAddr returns the bound unicast address ("host:port").
func (m *UDPMesh) LocalAddr() string { return m.local.String() }

// AddPeer registers a peer's unicast address. Include the local address
// to receive loopback copies of own sends (FTMP relies on multicast
// loopback for subscription bookkeeping; own packets are filtered by
// source processor id at the protocol layer).
func (m *UDPMesh) AddPeer(addr string) error {
	ua, err := net.ResolveUDPAddr("udp4", addr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		if p.String() == ua.String() {
			return nil
		}
	}
	// Copy-on-write: Send holds the old slice outside the lock.
	peers := make([]*net.UDPAddr, len(m.peers), len(m.peers)+1)
	copy(peers, m.peers)
	m.peers = append(peers, ua)
	return nil
}

func (m *UDPMesh) readLoop() {
	defer m.wg.Done()
	guard := RetryGuard{Name: fmt.Sprintf("mesh reader %v", m.local), OnFatal: m.fatal}
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := m.conn.ReadFromUDP(buf)
		if err != nil {
			if !guard.Admit(err) {
				return
			}
			continue
		}
		guard.OK()
		if n < meshFrameHeader {
			continue
		}
		var logical wire.MulticastAddr
		copy(logical.IP[:], buf[0:4])
		logical.Port = uint16(buf[4])<<8 | uint16(buf[5])
		m.mu.Lock()
		subscribed := m.joined[logical]
		m.mu.Unlock()
		if !subscribed {
			continue
		}
		data := make([]byte, n-meshFrameHeader)
		copy(data, buf[meshFrameHeader:n])
		m.handler(data, logical)
	}
}

// Join implements Transport.
func (m *UDPMesh) Join(addr wire.MulticastAddr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.joined[addr] = true
	return nil
}

// Leave implements Transport.
func (m *UDPMesh) Leave(addr wire.MulticastAddr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.joined, addr)
	return nil
}

// framePool recycles mesh send frames. WriteToUDP copies the buffer
// into the kernel synchronously, so a frame can be pooled as soon as the
// send loop is done with it.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// Send implements Transport.
func (m *UDPMesh) Send(addr wire.MulticastAddr, data []byte) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	// AddPeer replaces the slice rather than appending in place, so the
	// reference is a stable snapshot once the lock is released.
	peers := m.peers
	m.mu.Unlock()

	bp := framePool.Get().(*[]byte)
	frame := append((*bp)[:0], addr.IP[0], addr.IP[1], addr.IP[2], addr.IP[3],
		byte(addr.Port>>8), byte(addr.Port))
	frame = append(frame, data...)
	var firstErr error
	for _, p := range peers {
		if _, err := m.conn.WriteToUDP(frame, p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	*bp = frame
	framePool.Put(bp)
	return firstErr
}

// Close implements Transport.
func (m *UDPMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.conn.Close()
	m.wg.Wait()
	return nil
}
