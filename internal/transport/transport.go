// Package transport provides real-network datagram transports for the
// FTMP stack: genuine UDP/IP multicast (the substrate the paper assumes)
// and a unicast mesh that emulates multicast where IGMP is unavailable
// (containers, CI). Both present the same interface; the FTMP node never
// knows which is underneath.
//
// Both transports optionally batch the syscall layer: on linux the mesh
// drains up to MeshConfig.RecvBatch datagrams per recvmmsg(2) call and
// coalesces up to MeshConfig.SendBatch frames per sendmmsg(2) call
// (SendBatch / the BatchSender interface), so a loaded node stops
// paying one kernel crossing per datagram. Batching is off by default
// and degrades to the classic single-syscall path on other platforms
// or when the kernel refuses the vectored calls — see mmsg.go.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// Handler receives one datagram and the logical multicast address it
// arrived on.
type Handler func(data []byte, addr wire.MulticastAddr)

// Transport is a multicast datagram service.
type Transport interface {
	// Join subscribes to a multicast address.
	Join(addr wire.MulticastAddr) error
	// Leave unsubscribes.
	Leave(addr wire.MulticastAddr) error
	// Send multicasts data to addr.
	Send(addr wire.MulticastAddr, data []byte) error
	// Close stops the transport and its reader goroutines.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// maxDatagram bounds receive buffers.
const maxDatagram = 65536

// UDPMulticast is a real IP-multicast transport: one UDP socket per
// joined group, reader goroutines feeding the handler.
type UDPMulticast struct {
	handler Handler

	mu      sync.Mutex
	conns   map[wire.MulticastAddr]*net.UDPConn
	errHook func(error)
	closed  bool
	batch   int
	wg      sync.WaitGroup

	// sendConns caches one connected send socket per destination so the
	// datapath does not dial (socket + bind + connect) per datagram.
	sendMu    sync.Mutex
	sendConns map[wire.MulticastAddr]*net.UDPConn
}

// SetErrorHook registers fn to receive fatal receive-loop errors (a
// reader that exhausted its retries and died). Without a hook such
// deaths are still counted (transport.read_fatal) but otherwise silent.
func (t *UDPMulticast) SetErrorHook(fn func(error)) {
	t.mu.Lock()
	t.errHook = fn
	t.mu.Unlock()
}

func (t *UDPMulticast) fatal(err error) {
	t.mu.Lock()
	fn := t.errHook
	t.mu.Unlock()
	if fn != nil {
		fn(err)
	}
}

// NewUDPMulticast creates a multicast transport delivering to handler.
func NewUDPMulticast(handler Handler) *UDPMulticast {
	return &UDPMulticast{
		handler:   handler,
		conns:     make(map[wire.MulticastAddr]*net.UDPConn),
		sendConns: make(map[wire.MulticastAddr]*net.UDPConn),
	}
}

// SetSendBatch enables sendmmsg coalescing for SendBatch: up to n
// frames per vectored call on each destination's connected socket.
// n <= 1 (the default) keeps one syscall per datagram.
func (t *UDPMulticast) SetSendBatch(n int) {
	t.mu.Lock()
	t.batch = n
	t.mu.Unlock()
}

func toUDPAddr(a wire.MulticastAddr) *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(a.IP[0], a.IP[1], a.IP[2], a.IP[3]), Port: int(a.Port)}
}

// Join implements Transport.
func (t *UDPMulticast) Join(addr wire.MulticastAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if _, ok := t.conns[addr]; ok {
		return nil
	}
	conn, err := net.ListenMulticastUDP("udp4", nil, toUDPAddr(addr))
	if err != nil {
		return fmt.Errorf("transport: join %v: %w", addr, err)
	}
	t.conns[addr] = conn
	t.wg.Add(1)
	go t.readLoop(conn, addr)
	return nil
}

func (t *UDPMulticast) readLoop(conn *net.UDPConn, addr wire.MulticastAddr) {
	defer t.wg.Done()
	guard := RetryGuard{Name: fmt.Sprintf("multicast reader %v", addr), OnFatal: t.fatal}
	buf := make([]byte, maxDatagram)
	var arena recvArena
	for {
		n, _, err := conn.ReadFromUDP(buf)
		trace.Inc("transport.rx_syscalls")
		if err != nil {
			// Closure (Leave or Close) exits quietly; a transient socket
			// error must not kill the reader — missed heartbeats would
			// get this processor convicted. Retry with backoff.
			if !guard.Admit(err) {
				return
			}
			continue
		}
		guard.OK()
		trace.Inc("transport.rx_frames")
		// The handler owns its buffer forever (HandlePacket contract), so
		// the read buffer cannot be handed up directly; the arena carve
		// amortizes the per-datagram copy's allocation.
		data := arena.take(n)
		copy(data, buf[:n])
		t.handler(data, addr)
	}
}

// Leave implements Transport.
func (t *UDPMulticast) Leave(addr wire.MulticastAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if conn, ok := t.conns[addr]; ok {
		delete(t.conns, addr)
		conn.Close()
	}
	return nil
}

// sendConn returns (dialing and caching if needed) the connected send
// socket for addr.
func (t *UDPMulticast) sendConn(addr wire.MulticastAddr) (*net.UDPConn, error) {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	conn, ok := t.sendConns[addr]
	if !ok {
		var err error
		conn, err = net.DialUDP("udp4", nil, toUDPAddr(addr))
		if err != nil {
			return nil, err
		}
		t.sendConns[addr] = conn
	}
	return conn, nil
}

// Send implements Transport.
func (t *UDPMulticast) Send(addr wire.MulticastAddr, data []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	t.mu.Unlock()
	conn, err := t.sendConn(addr)
	if err != nil {
		return err
	}
	return sendOne(conn, outFrame{data: data})
}

// SendBatch implements BatchSender: consecutive same-address runs share
// one connected socket and, with SetSendBatch > 1 on linux, one
// sendmmsg vector per run. Per-destination order is slice order.
func (t *UDPMulticast) SendBatch(items []Datagram) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	batch := t.batch
	t.mu.Unlock()
	var firstErr error
	for i := 0; i < len(items); {
		j := i + 1
		for j < len(items) && items[j].Addr == items[i].Addr {
			j++
		}
		conn, err := t.sendConn(items[i].Addr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			i = j
			continue
		}
		if batch > 1 && useMMsg() && j-i > 1 {
			frames := make([]outFrame, 0, j-i)
			for k := i; k < j; k++ {
				frames = append(frames, outFrame{data: items[k].Data})
			}
			if err := vectorSend(conn, frames, batch, rawSendmmsg); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			for k := i; k < j; k++ {
				if err := sendOne(conn, outFrame{data: items[k].Data}); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		i = j
	}
	return firstErr
}

// Close implements Transport.
func (t *UDPMulticast) Close() error {
	t.mu.Lock()
	t.closed = true
	conns := make([]*net.UDPConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.conns = make(map[wire.MulticastAddr]*net.UDPConn)
	t.mu.Unlock()
	t.sendMu.Lock()
	for _, c := range t.sendConns {
		conns = append(conns, c)
	}
	t.sendConns = make(map[wire.MulticastAddr]*net.UDPConn)
	t.sendMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

// meshFrame prefixes each datagram with the 6-byte logical multicast
// address so receivers can demultiplex subscriptions.
const meshFrameHeader = 6

// MeshConfig tunes the mesh's syscall batching. The zero value is the
// classic transport: one syscall per datagram in both directions.
type MeshConfig struct {
	// RecvBatch > 1 drains up to that many datagrams per recvmmsg(2)
	// call (linux; elsewhere, and on kernels that refuse the vectored
	// call, the reader falls back to one datagram per syscall). The
	// vector never waits to fill: an idle socket still delivers each
	// datagram as it arrives.
	RecvBatch int
	// SendBatch > 1 lets SendBatch coalesce up to that many wire frames
	// per sendmmsg(2) call. Send itself (one datagram) is unaffected.
	SendBatch int
}

// UDPMesh emulates IP multicast over unicast UDP: every node binds one
// socket and sends each "multicast" to every peer; receivers filter by
// joined logical address. It behaves like multicast with loopback
// enabled (the sender receives its own traffic when subscribed), which
// is what the FTMP node expects.
type UDPMesh struct {
	handler Handler
	cfg     MeshConfig

	conn  *net.UDPConn
	local *net.UDPAddr

	mu      sync.Mutex
	peers   []*net.UDPAddr
	joined  map[wire.MulticastAddr]bool
	errHook func(error)
	closed  bool
	wg      sync.WaitGroup
}

// SetErrorHook registers fn to receive fatal receive-loop errors, as
// with UDPMulticast.SetErrorHook.
func (m *UDPMesh) SetErrorHook(fn func(error)) {
	m.mu.Lock()
	m.errHook = fn
	m.mu.Unlock()
}

func (m *UDPMesh) fatal(err error) {
	m.mu.Lock()
	fn := m.errHook
	m.mu.Unlock()
	if fn != nil {
		fn(err)
	}
}

// NewUDPMesh binds a unicast socket on listenAddr (e.g. "127.0.0.1:0")
// and delivers subscribed datagrams to handler. Peers (including this
// node's own address, for loopback) are added with AddPeer.
func NewUDPMesh(listenAddr string, handler Handler) (*UDPMesh, error) {
	return NewUDPMeshConfig(listenAddr, handler, MeshConfig{})
}

// NewUDPMeshConfig is NewUDPMesh with syscall batching configured.
func NewUDPMeshConfig(listenAddr string, handler Handler, cfg MeshConfig) (*UDPMesh, error) {
	ua, err := net.ResolveUDPAddr("udp4", listenAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp4", ua)
	if err != nil {
		return nil, err
	}
	m := &UDPMesh{
		handler: handler,
		cfg:     cfg,
		conn:    conn,
		local:   conn.LocalAddr().(*net.UDPAddr),
		joined:  make(map[wire.MulticastAddr]bool),
	}
	m.wg.Add(1)
	if cfg.RecvBatch > 1 && useMMsg() {
		go m.readLoopBatched(cfg.RecvBatch)
	} else {
		go m.readLoop()
	}
	return m, nil
}

// LocalAddr returns the bound unicast address ("host:port").
func (m *UDPMesh) LocalAddr() string { return m.local.String() }

// AddPeer registers a peer's unicast address. Include the local address
// to receive loopback copies of own sends (FTMP relies on multicast
// loopback for subscription bookkeeping; own packets are filtered by
// source processor id at the protocol layer).
func (m *UDPMesh) AddPeer(addr string) error {
	ua, err := net.ResolveUDPAddr("udp4", addr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		if p.String() == ua.String() {
			return nil
		}
	}
	// Copy-on-write: Send holds the old slice outside the lock.
	peers := make([]*net.UDPAddr, len(m.peers), len(m.peers)+1)
	copy(peers, m.peers)
	m.peers = append(peers, ua)
	return nil
}

func (m *UDPMesh) readLoop() {
	defer m.wg.Done()
	guard := RetryGuard{Name: fmt.Sprintf("mesh reader %v", m.local), OnFatal: m.fatal}
	var arena recvArena
	m.readFrom(&guard, &arena)
}

// readFrom is the single-datagram receive loop: one ReadFromUDP per
// datagram. Shared by the legacy path and the batched loop's runtime
// downgrade.
func (m *UDPMesh) readFrom(guard *RetryGuard, arena *recvArena) {
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := m.conn.ReadFromUDP(buf)
		trace.Inc("transport.rx_syscalls")
		if err != nil {
			if !guard.Admit(err) {
				return
			}
			continue
		}
		guard.OK()
		trace.Inc("transport.rx_frames")
		m.deliverFrame(buf[:n], arena)
	}
}

// readLoopBatched drains up to batch datagrams per recvmmsg call into
// reused staging buffers and hands each subscribed frame up. A kernel
// that refuses the vectored call downgrades to the single-syscall loop
// without dropping anything.
func (m *UDPMesh) readLoopBatched(batch int) {
	defer m.wg.Done()
	guard := RetryGuard{Name: fmt.Sprintf("mesh reader %v", m.local), OnFatal: m.fatal}
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = make([]byte, maxDatagram)
	}
	sizes := make([]int, batch)
	var arena recvArena
	for {
		if !useMMsg() {
			m.readFrom(&guard, &arena)
			return
		}
		n, err := rawRecvmmsg(m.conn, bufs, sizes)
		trace.Inc("transport.rx_syscalls")
		if err != nil {
			if mmsgUnsupported(err) {
				noteMMsgUnsupported()
				continue
			}
			if !guard.Admit(err) {
				return
			}
			continue
		}
		guard.OK()
		trace.Inc("transport.rx_recvmmsg_calls")
		trace.Count("transport.rx_frames", uint64(n))
		noteBatch("rx", n)
		for i := 0; i < n; i++ {
			m.deliverFrame(bufs[i][:sizes[i]], &arena)
		}
	}
}

// deliverFrame demultiplexes one received mesh frame: parse the logical
// address prefix, drop unsubscribed traffic, copy the payload into an
// owned buffer (the handler keeps it — HandlePacket ownership contract;
// the arena amortizes the allocations) and hand it up. The staging
// buffer backing frame is the caller's and is reused for the next read.
func (m *UDPMesh) deliverFrame(frame []byte, arena *recvArena) {
	if len(frame) < meshFrameHeader {
		return
	}
	var logical wire.MulticastAddr
	copy(logical.IP[:], frame[0:4])
	logical.Port = uint16(frame[4])<<8 | uint16(frame[5])
	m.mu.Lock()
	subscribed := m.joined[logical]
	m.mu.Unlock()
	if !subscribed {
		return
	}
	data := arena.take(len(frame) - meshFrameHeader)
	copy(data, frame[meshFrameHeader:])
	m.handler(data, logical)
}

// Join implements Transport.
func (m *UDPMesh) Join(addr wire.MulticastAddr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.joined[addr] = true
	return nil
}

// Leave implements Transport.
func (m *UDPMesh) Leave(addr wire.MulticastAddr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.joined, addr)
	return nil
}

// framePool recycles mesh send frames. The kernel copies the buffer out
// synchronously (WriteToUDP or sendmmsg), so a frame can be pooled as
// soon as the send call it was part of returns.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// buildFrame assembles the 6-byte logical-address prefix plus payload
// into a pooled buffer.
func buildFrame(addr wire.MulticastAddr, data []byte) *[]byte {
	bp := framePool.Get().(*[]byte)
	frame := append((*bp)[:0], addr.IP[0], addr.IP[1], addr.IP[2], addr.IP[3],
		byte(addr.Port>>8), byte(addr.Port))
	*bp = append(frame, data...)
	return bp
}

// Send implements Transport.
func (m *UDPMesh) Send(addr wire.MulticastAddr, data []byte) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	// AddPeer replaces the slice rather than appending in place, so the
	// reference is a stable snapshot once the lock is released.
	peers := m.peers
	m.mu.Unlock()

	bp := buildFrame(addr, data)
	var firstErr error
	for _, p := range peers {
		if err := sendOne(m.conn, outFrame{data: *bp, to: p}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	framePool.Put(bp)
	return firstErr
}

// SendBatch implements BatchSender: each logical datagram is framed
// once and fanned out across the peer set, and with MeshConfig.
// SendBatch > 1 on linux the whole fan-out goes to the kernel in
// ceil(len(items)*peers/SendBatch) sendmmsg calls instead of
// len(items)*peers sendto calls. Items are expanded in slice order with
// the peer fan-out innermost, so every single destination sees frames
// in item order — the same per-destination FIFO the equivalent Send
// sequence provides.
func (m *UDPMesh) SendBatch(items []Datagram) error {
	if len(items) == 0 {
		return nil
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	peers := m.peers
	m.mu.Unlock()
	if len(peers) == 0 {
		return nil
	}
	if m.cfg.SendBatch <= 1 || !useMMsg() {
		var firstErr error
		for _, it := range items {
			if err := m.Send(it.Addr, it.Data); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	bufs := make([]*[]byte, 0, len(items))
	out := make([]outFrame, 0, len(items)*len(peers))
	for _, it := range items {
		bp := buildFrame(it.Addr, it.Data)
		bufs = append(bufs, bp)
		for _, p := range peers {
			out = append(out, outFrame{data: *bp, to: p})
		}
	}
	err := vectorSend(m.conn, out, m.cfg.SendBatch, rawSendmmsg)
	for _, bp := range bufs {
		framePool.Put(bp)
	}
	return err
}

// Close implements Transport.
func (m *UDPMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.conn.Close()
	m.wg.Wait()
	return nil
}
