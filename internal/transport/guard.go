package transport

import (
	"errors"
	"fmt"
	"net"
	"time"

	"ftmp/internal/trace"
)

const (
	retryBase      = time.Millisecond
	retryMax       = 100 * time.Millisecond
	fatalThreshold = 100
)

// RetryGuard paces a receive or accept loop through socket errors so a
// transient fault (EMFILE, a momentarily unroutable interface, a
// spurious ICMP error surfaced on the socket) does not silently kill
// the reader goroutine and with it the node's ability to hear the
// group. Closure (net.ErrClosed) exits quietly; anything else is
// retried with exponential backoff from 1ms to 100ms; a streak of 100
// consecutive failures is escalated to OnFatal and the loop exits.
// The zero value is usable; set Name/Counter/OnFatal before the loop
// starts.
type RetryGuard struct {
	// Name describes the loop in the fatal error text.
	Name string
	// Counter is the trace counter stem: "<Counter>_transient" counts
	// retried errors and "<Counter>_fatal" escalations. Default
	// "transport.read".
	Counter string
	// OnFatal is invoked (once per streak) when the error persists past
	// the threshold; the loop exits afterwards. May be nil.
	OnFatal func(error)
	// Sleep is an injection point for tests; nil means time.Sleep.
	Sleep func(time.Duration)

	streak int
	delay  time.Duration
}

// OK records a successful operation, resetting the error streak.
func (g *RetryGuard) OK() { g.streak, g.delay = 0, 0 }

// Admit classifies err after a failed read or accept. It returns true
// when the loop should retry (after backing off in-call), false when it
// must exit: either an orderly closure or a fatal error streak.
func (g *RetryGuard) Admit(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	stem := g.Counter
	if stem == "" {
		stem = "transport.read"
	}
	g.streak++
	trace.Inc(stem + "_transient")
	if g.streak >= fatalThreshold {
		trace.Inc(stem + "_fatal")
		if g.OnFatal != nil {
			g.OnFatal(fmt.Errorf("transport: %s failed %d times in a row: %w", g.Name, g.streak, err))
		}
		return false
	}
	if g.delay == 0 {
		g.delay = retryBase
	} else if g.delay *= 2; g.delay > retryMax {
		g.delay = retryMax
	}
	sleep := g.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(g.delay)
	return true
}
