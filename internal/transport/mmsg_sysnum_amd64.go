//go:build linux && amd64

package transport

// Syscall numbers for linux/amd64 (arch/x86/entry/syscalls). The
// standard library defines SYS_RECVMMSG but its table was frozen
// before sendmmsg landed in Linux 3.0.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
