package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"ftmp/internal/wire"
)

// resetMMsg restores the process-wide downgrade latch a test may have
// tripped, so later batched tests still exercise the vectored path.
func resetMMsg(t *testing.T) {
	t.Cleanup(func() { mmsgDowngraded.Store(false) })
}

// TestMeshBatchedFIFOAndIntegrity drives two batched meshes with
// concurrent SendBatch streams and asserts per-destination FIFO order
// and frame integrity across frame-pool reuse (run under -race to
// check the pooled buffers are never recycled early).
func TestMeshBatchedFIFOAndIntegrity(t *testing.T) {
	resetMMsg(t)
	const (
		streams   = 3
		perStream = 400
		payload   = 64
	)
	var mu sync.Mutex
	got := make(map[uint32][]uint32)
	recv, err := NewUDPMeshConfig("127.0.0.1:0", func(data []byte, _ wire.MulticastAddr) {
		if len(data) != payload {
			mu.Lock()
			got[999] = append(got[999], 0) // corruption marker
			mu.Unlock()
			return
		}
		stream := binary.BigEndian.Uint32(data[0:4])
		seq := binary.BigEndian.Uint32(data[4:8])
		for i := 8; i < payload; i++ {
			if data[i] != byte(stream)^byte(seq) {
				stream = 999 // corruption marker
				break
			}
		}
		mu.Lock()
		got[stream] = append(got[stream], seq)
		mu.Unlock()
	}, MeshConfig{RecvBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	_ = recv.conn.SetReadBuffer(1 << 21)

	send, err := NewUDPMeshConfig("127.0.0.1:0", func([]byte, wire.MulticastAddr) {}, MeshConfig{SendBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if err := send.AddPeer(recv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	addr := wire.MulticastAddr{IP: [4]byte{239, 9, 9, 9}, Port: 9}
	if err := recv.Join(addr); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(stream uint32) {
			defer wg.Done()
			// Batches of 16 logical datagrams per SendBatch call; the
			// payload pattern is checkable at the receiver, so a frame
			// buffer recycled before the kernel copied it out would show
			// up as corruption.
			for base := uint32(0); base < perStream; base += 16 {
				items := make([]Datagram, 0, 16)
				for k := uint32(0); k < 16 && base+k < perStream; k++ {
					data := make([]byte, payload)
					binary.BigEndian.PutUint32(data[0:4], stream)
					binary.BigEndian.PutUint32(data[4:8], base+k)
					for i := 8; i < payload; i++ {
						data[i] = byte(stream) ^ byte(base+k)
					}
					items = append(items, Datagram{Addr: addr, Data: data})
				}
				if err := send.SendBatch(items); err != nil {
					t.Errorf("SendBatch: %v", err)
					return
				}
				time.Sleep(200 * time.Microsecond) // stay under the socket buffer
			}
		}(uint32(s))
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, seqs := range got {
			total += len(seqs)
		}
		mu.Unlock()
		if total >= streams*perStream || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got[999]) > 0 {
		t.Fatalf("%d corrupt frames received", len(got[999]))
	}
	for s := uint32(0); s < streams; s++ {
		seqs := got[s]
		if len(seqs) != perStream {
			t.Fatalf("stream %d: received %d/%d", s, len(seqs), perStream)
		}
		for i, seq := range seqs {
			if seq != uint32(i) {
				t.Fatalf("stream %d: position %d carries seq %d (FIFO violated)", s, i, seq)
			}
		}
	}
}

// TestVectorSendShortCount exercises the resume logic: a kernel that
// accepts only part of each vector must still get every frame, in
// order, exactly once.
func TestVectorSendShortCount(t *testing.T) {
	resetMMsg(t)
	if !mmsgArch {
		t.Skip("vectored syscalls not compiled on this platform")
	}
	frames := make([]outFrame, 10)
	for i := range frames {
		frames[i] = outFrame{data: []byte{byte(i)}}
	}
	var sent []byte
	stub := func(_ *net.UDPConn, chunk []outFrame) (int, error) {
		// Accept at most 3 frames per call, and only 1 on the first.
		n := 3
		if len(sent) == 0 {
			n = 1
		}
		if n > len(chunk) {
			n = len(chunk)
		}
		for _, f := range chunk[:n] {
			sent = append(sent, f.data[0])
		}
		return n, nil
	}
	if err := vectorSend(nil, frames, 4, stub); err != nil {
		t.Fatal(err)
	}
	if len(sent) != len(frames) {
		t.Fatalf("sent %d frames, want %d", len(sent), len(frames))
	}
	for i, b := range sent {
		if b != byte(i) {
			t.Fatalf("position %d sent frame %d (order violated)", i, b)
		}
	}
}

// TestVectorSendPoisonFrameSkipped: an error with zero progress must
// skip the head frame, not spin forever, and later frames still go out.
func TestVectorSendPoisonFrameSkipped(t *testing.T) {
	resetMMsg(t)
	if !mmsgArch {
		t.Skip("vectored syscalls not compiled on this platform")
	}
	frames := []outFrame{{data: []byte{0}}, {data: []byte{1}}, {data: []byte{2}}}
	var sent []byte
	calls := 0
	stub := func(_ *net.UDPConn, chunk []outFrame) (int, error) {
		calls++
		if chunk[0].data[0] == 0 {
			return 0, syscall.EMSGSIZE
		}
		for _, f := range chunk {
			sent = append(sent, f.data[0])
		}
		return len(chunk), nil
	}
	err := vectorSend(nil, frames, 8, stub)
	if err != syscall.EMSGSIZE {
		t.Fatalf("err = %v, want EMSGSIZE", err)
	}
	if len(sent) != 2 || sent[0] != 1 || sent[1] != 2 {
		t.Fatalf("sent %v, want [1 2]", sent)
	}
}

// TestVectorSendDowngradeOnENOSYS: a kernel refusing the vectored call
// mid-batch must finish the batch on the single-syscall path and latch
// the downgrade for the whole process.
func TestVectorSendDowngradeOnENOSYS(t *testing.T) {
	resetMMsg(t)
	if !mmsgArch {
		t.Skip("vectored syscalls not compiled on this platform")
	}
	var mu sync.Mutex
	var got [][]byte
	dstConn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer dstConn.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		for {
			n, _, err := dstConn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			mu.Lock()
			got = append(got, append([]byte(nil), buf[:n]...))
			mu.Unlock()
		}
	}()
	srcConn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srcConn.Close()
	dst := dstConn.LocalAddr().(*net.UDPAddr)
	frames := []outFrame{
		{data: []byte("a"), to: dst},
		{data: []byte("b"), to: dst},
		{data: []byte("c"), to: dst},
	}
	stub := func(*net.UDPConn, []outFrame) (int, error) { return 0, syscall.ENOSYS }
	if err := vectorSend(srcConn, frames, 8, stub); err != nil {
		t.Fatal(err)
	}
	if useMMsg() {
		t.Error("ENOSYS did not latch the downgrade")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprintf("%s%s%s", got[0], got[1], got[2]) != "abc" {
		t.Fatalf("fallback delivered %q", got)
	}
}

// TestMeshBatchSendUnderPeerChurn: peers joining and dying mid-stream
// must neither panic the batch path nor corrupt what the survivor
// receives. (Send errors toward the dead peer are expected and
// tolerated — the protocol above treats them as loss.)
func TestMeshBatchSendUnderPeerChurn(t *testing.T) {
	resetMMsg(t)
	const msgs = 600
	var mu sync.Mutex
	var seqs []uint32
	addr := wire.MulticastAddr{IP: [4]byte{239, 7, 7, 7}, Port: 7}
	survivor, err := NewUDPMeshConfig("127.0.0.1:0", func(data []byte, _ wire.MulticastAddr) {
		if len(data) != 8 {
			return
		}
		mu.Lock()
		seqs = append(seqs, binary.BigEndian.Uint32(data[4:8]))
		mu.Unlock()
	}, MeshConfig{RecvBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	_ = survivor.conn.SetReadBuffer(1 << 21)
	if err := survivor.Join(addr); err != nil {
		t.Fatal(err)
	}

	send, err := NewUDPMeshConfig("127.0.0.1:0", func([]byte, wire.MulticastAddr) {}, MeshConfig{SendBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if err := send.AddPeer(survivor.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	// Churner: transient peers appear and vanish while the stream runs.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tmp, err := NewUDPMesh("127.0.0.1:0", func([]byte, wire.MulticastAddr) {})
			if err != nil {
				continue
			}
			_ = send.AddPeer(tmp.LocalAddr())
			time.Sleep(2 * time.Millisecond)
			tmp.Close() // sends toward it now fail or vanish; both fine
		}
	}()

	for base := uint32(0); base < msgs; base += 8 {
		items := make([]Datagram, 0, 8)
		for k := uint32(0); k < 8 && base+k < msgs; k++ {
			data := make([]byte, 8)
			binary.BigEndian.PutUint32(data[4:8], base+k)
			items = append(items, Datagram{Addr: addr, Data: data})
		}
		_ = send.SendBatch(items) // dead-peer errors tolerated
		time.Sleep(500 * time.Microsecond)
	}
	close(stop)
	churn.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seqs)
		mu.Unlock()
		if n >= msgs || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != msgs {
		t.Fatalf("survivor received %d/%d", len(seqs), msgs)
	}
	for i, seq := range seqs {
		if seq != uint32(i) {
			t.Fatalf("position %d carries seq %d (FIFO violated)", i, seq)
		}
	}
}

// TestMeshBatchedRecvDowngrade: a batched-receive mesh on a kernel that
// refuses recvmmsg must keep delivering via the fallback loop.
func TestMeshBatchedRecvDowngrade(t *testing.T) {
	resetMMsg(t)
	if !mmsgArch {
		t.Skip("vectored syscalls not compiled on this platform")
	}
	// Latch the downgrade first: the constructor must then run the
	// single-syscall loop even though RecvBatch asks for batching.
	noteMMsgUnsupported()
	var mu sync.Mutex
	var got []string
	m, err := NewUDPMeshConfig("127.0.0.1:0", func(data []byte, _ wire.MulticastAddr) {
		mu.Lock()
		got = append(got, string(data))
		mu.Unlock()
	}, MeshConfig{RecvBatch: 32, SendBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AddPeer(m.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	addr := wire.MulticastAddr{IP: [4]byte{239, 3, 3, 3}, Port: 3}
	if err := m.Join(addr); err != nil {
		t.Fatal(err)
	}
	if err := m.SendBatch([]Datagram{{Addr: addr, Data: []byte("x")}, {Addr: addr, Data: []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("downgraded mesh delivered %q", got)
	}
}

// TestRecvArena: carves are exact-size, full-capacity-bounded, disjoint
// and independently owned; oversize requests bypass the slab.
func TestRecvArena(t *testing.T) {
	var a recvArena
	x := a.take(8)
	y := a.take(8)
	if len(x) != 8 || cap(x) != 8 || len(y) != 8 || cap(y) != 8 {
		t.Fatalf("len/cap: %d/%d %d/%d", len(x), cap(x), len(y), cap(y))
	}
	for i := range x {
		x[i] = 0xAA
	}
	for i := range y {
		y[i] = 0x55
	}
	for i := range x {
		if x[i] != 0xAA {
			t.Fatal("carves overlap")
		}
	}
	// An append at capacity must reallocate, not bleed into y's bytes.
	x = append(x, 0xFF)
	if y[0] != 0x55 {
		t.Fatal("append bled into the next carve")
	}
	big := a.take(arenaSlab)
	if len(big) != arenaSlab {
		t.Fatalf("oversize carve len %d", len(big))
	}
	// Exhaust a slab boundary: every carve keeps exact size.
	for i := 0; i < 10000; i++ {
		b := a.take(100)
		if len(b) != 100 || cap(b) != 100 {
			t.Fatalf("carve %d: len %d cap %d", i, len(b), cap(b))
		}
	}
}

// TestMeshBatchedLoopback sanity-checks the genuine vectored syscalls
// end to end on this kernel (skipped where not compiled in): batched
// sender and batched receiver, counters moving.
func TestMeshBatchedLoopback(t *testing.T) {
	resetMMsg(t)
	if !useMMsg() {
		t.Skip("vectored syscalls unavailable")
	}
	var mu sync.Mutex
	var got []string
	m, err := NewUDPMeshConfig("127.0.0.1:0", func(data []byte, _ wire.MulticastAddr) {
		mu.Lock()
		got = append(got, string(data))
		mu.Unlock()
	}, MeshConfig{RecvBatch: 16, SendBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AddPeer(m.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	addr := wire.MulticastAddr{IP: [4]byte{239, 5, 5, 5}, Port: 5}
	if err := m.Join(addr); err != nil {
		t.Fatal(err)
	}
	items := make([]Datagram, 20)
	for i := range items {
		items[i] = Datagram{Addr: addr, Data: []byte(fmt.Sprintf("m%02d", i))}
	}
	if err := m.SendBatch(items); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= len(items) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(items) {
		t.Fatalf("received %d/%d", len(got), len(items))
	}
	for i, s := range got {
		if s != fmt.Sprintf("m%02d", i) {
			t.Fatalf("position %d = %q", i, s)
		}
	}
}
