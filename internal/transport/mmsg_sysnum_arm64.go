//go:build linux && arm64

package transport

// Syscall numbers for linux/arm64 (the generic unistd table).
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
