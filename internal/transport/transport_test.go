package transport

import (
	"sync"
	"testing"
	"time"

	"ftmp/internal/wire"
)

func TestMeshLoopbackAndFiltering(t *testing.T) {
	type rx struct {
		data string
		addr wire.MulticastAddr
	}
	var mu sync.Mutex
	var got []rx
	m, err := NewUDPMesh("127.0.0.1:0", func(data []byte, addr wire.MulticastAddr) {
		mu.Lock()
		got = append(got, rx{string(data), addr})
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AddPeer(m.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// Duplicate AddPeer is a no-op (no double delivery).
	if err := m.AddPeer(m.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	a := wire.MulticastAddr{IP: [4]byte{239, 1, 1, 1}, Port: 100}
	b := wire.MulticastAddr{IP: [4]byte{239, 1, 1, 2}, Port: 100}
	if err := m.Join(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(a, []byte("on-a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(b, []byte("on-b")); err != nil { // not joined: dropped
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].data != "on-a" || got[0].addr != a {
		t.Fatalf("got %v", got)
	}
}

func TestMeshBadPeerAddress(t *testing.T) {
	m, err := NewUDPMesh("127.0.0.1:0", func([]byte, wire.MulticastAddr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AddPeer("not-an-address"); err == nil {
		t.Error("bad peer accepted")
	}
}

func TestMeshBadListenAddress(t *testing.T) {
	if _, err := NewUDPMesh("256.0.0.1:-1", func([]byte, wire.MulticastAddr) {}); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestMeshCloseIdempotent(t *testing.T) {
	m, err := NewUDPMesh("127.0.0.1:0", func([]byte, wire.MulticastAddr) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMeshShortFrameIgnored(t *testing.T) {
	received := false
	m, err := NewUDPMesh("127.0.0.1:0", func([]byte, wire.MulticastAddr) { received = true })
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// A raw datagram shorter than the frame header must be dropped.
	peer, err := NewUDPMesh("127.0.0.1:0", func([]byte, wire.MulticastAddr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	// Send raw bytes (below the mesh framing) straight to m's socket.
	if _, err := peer.conn.WriteToUDP([]byte{1, 2}, m.local); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if received {
		t.Error("short frame delivered")
	}
}

func TestUDPMulticastLifecycle(t *testing.T) {
	// Genuine multicast may be unavailable in the environment; exercise
	// as much of the lifecycle as the host permits.
	var mu sync.Mutex
	var got [][]byte
	tr := NewUDPMulticast(func(data []byte, _ wire.MulticastAddr) {
		mu.Lock()
		got = append(got, data)
		mu.Unlock()
	})
	addr := wire.MulticastAddr{IP: [4]byte{239, 200, 200, 200}, Port: 17999}
	if err := tr.Join(addr); err != nil {
		t.Skipf("multicast unavailable here: %v", err)
	}
	// Second join of the same group is a no-op.
	if err := tr.Join(addr); err != nil {
		t.Errorf("re-join: %v", err)
	}
	if err := tr.Send(addr, []byte("mc-hello")); err != nil {
		t.Logf("multicast send failed (environment): %v", err)
	} else {
		deadline := time.Now().Add(time.Second)
		for {
			mu.Lock()
			n := len(got)
			mu.Unlock()
			if n > 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		mu.Lock()
		if len(got) > 0 && string(got[0]) != "mc-hello" {
			t.Errorf("got %q", got[0])
		}
		mu.Unlock()
	}
	if err := tr.Leave(addr); err != nil {
		t.Errorf("leave: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := tr.Join(addr); err == nil {
		t.Error("join after close succeeded")
	}
	if err := tr.Send(addr, []byte("x")); err == nil {
		t.Error("send after close succeeded")
	}
}
