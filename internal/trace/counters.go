package trace

import (
	"sort"
	"sync"
)

// counters is a process-wide registry of named event counters. Layers
// bump them on robustness-relevant events (suspicions, convictions,
// connection retries, rejoin attempts, transport read errors, gateway
// load shedding) so operators and experiments can see what the stack
// did without threading a stats object through every layer. Counters
// are observational only: no protocol decision ever reads one, so they
// cannot perturb the deterministic simulations.
var (
	countersMu sync.Mutex
	counters   = make(map[string]uint64)
)

// Inc increments the named counter by one.
func Inc(name string) { Count(name, 1) }

// Count adds delta to the named counter.
func Count(name string, delta uint64) {
	if delta == 0 {
		return
	}
	countersMu.Lock()
	counters[name] += delta
	countersMu.Unlock()
}

// Counter returns the current value of the named counter (zero if it
// was never bumped).
func Counter(name string) uint64 {
	countersMu.Lock()
	defer countersMu.Unlock()
	return counters[name]
}

// Counters returns a snapshot of every nonzero counter.
func Counters() map[string]uint64 {
	countersMu.Lock()
	defer countersMu.Unlock()
	out := make(map[string]uint64, len(counters))
	for k, v := range counters {
		out[k] = v
	}
	return out
}

// ResetCounters zeroes the registry; experiments call it between runs
// so each table reflects only its own events.
func ResetCounters() {
	countersMu.Lock()
	counters = make(map[string]uint64)
	countersMu.Unlock()
}

// CountersTable renders the nonzero counters as a sorted two-column
// table for shutdown summaries and ftmpbench output.
func CountersTable(title string) *Table {
	snap := Counters()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	t := NewTable(title, "counter", "value")
	for _, name := range names {
		t.AddRow(name, snap[name])
	}
	return t
}
