package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The registry is a process-wide set of named event counters. Layers
// bump them on robustness-relevant events (suspicions, convictions,
// connection retries, rejoin attempts, transport read errors, gateway
// load shedding) so operators and experiments can see what the stack
// did without threading a stats object through every layer. Counters
// are observational only: no protocol decision ever reads one, so they
// cannot perturb the deterministic simulations.
//
// The hot path is lock-free: each counter is a *atomic.Uint64 cell
// interned in a sync.Map, so concurrent pipeline stages (decode
// workers, send shards, the delivery executor) increment disjoint
// cache lines instead of serializing on one mutex. ResetCounters swaps
// the whole registry; an increment racing a reset may land in either
// generation, which is the same observational looseness the old
// map+mutex had between an event and its snapshot.
var registry atomic.Pointer[counterSet]

type counterSet struct {
	cells sync.Map // string -> *atomic.Uint64
}

func init() { registry.Store(&counterSet{}) }

// cell returns the counter's atomic cell, interning it on first use.
func cell(name string) *atomic.Uint64 {
	set := registry.Load()
	if c, ok := set.cells.Load(name); ok {
		return c.(*atomic.Uint64)
	}
	c, _ := set.cells.LoadOrStore(name, new(atomic.Uint64))
	return c.(*atomic.Uint64)
}

// Inc increments the named counter by one.
func Inc(name string) { Count(name, 1) }

// Count adds delta to the named counter.
func Count(name string, delta uint64) {
	if delta == 0 {
		return
	}
	cell(name).Add(delta)
}

// Counter returns the current value of the named counter (zero if it
// was never bumped).
func Counter(name string) uint64 {
	if c, ok := registry.Load().cells.Load(name); ok {
		return c.(*atomic.Uint64).Load()
	}
	return 0
}

// Counters returns a snapshot of every nonzero counter.
func Counters() map[string]uint64 {
	out := make(map[string]uint64)
	registry.Load().cells.Range(func(k, v any) bool {
		if n := v.(*atomic.Uint64).Load(); n != 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// ResetCounters zeroes the registry; experiments call it between runs
// so each table reflects only its own events.
func ResetCounters() {
	registry.Store(&counterSet{})
}

// CountersTable renders the nonzero counters as a sorted two-column
// table for shutdown summaries and ftmpbench output.
func CountersTable(title string) *Table {
	snap := Counters()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	t := NewTable(title, "counter", "value")
	for _, name := range names {
		t.AddRow(name, snap[name])
	}
	return t
}
