package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	ResetCounters()
	Inc("a")
	Count("a", 2)
	Count("b", 5)
	Count("zero", 0) // no-op: never materializes
	if got := Counter("a"); got != 3 {
		t.Errorf("Counter(a) = %d, want 3", got)
	}
	if got := Counter("missing"); got != 0 {
		t.Errorf("Counter(missing) = %d, want 0", got)
	}
	snap := Counters()
	if len(snap) != 2 || snap["a"] != 3 || snap["b"] != 5 {
		t.Errorf("snapshot = %v", snap)
	}
	// Snapshot is a copy.
	snap["a"] = 99
	if Counter("a") != 3 {
		t.Error("snapshot aliases the registry")
	}
	ResetCounters()
	if len(Counters()) != 0 {
		t.Error("reset left counters behind")
	}
}

func TestCountersTableSorted(t *testing.T) {
	ResetCounters()
	Count("zz.last", 1)
	Count("aa.first", 2)
	s := CountersTable("t").String()
	if strings.Index(s, "aa.first") > strings.Index(s, "zz.last") {
		t.Errorf("table not sorted:\n%s", s)
	}
	ResetCounters()
}

// TestCountersConcurrentDistinct hammers many distinct counters from
// many goroutines while snapshots and resets run concurrently — the
// access pattern of the pipelined runtime (decode workers, send shards,
// delivery executor all bumping their own counters while /stats reads).
func TestCountersConcurrentDistinct(t *testing.T) {
	ResetCounters()
	var wg sync.WaitGroup
	names := []string{"w0", "w1", "w2", "w3"}
	for i := 0; i < 8; i++ {
		name := names[i%len(names)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				Inc(name)
				Count(name, 2)
			}
		}()
	}
	// Readers and one reset race the writers; no assertion on totals
	// (the reset discards an unspecified prefix), only on safety.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			_ = Counters()
			_ = Counter("w1")
		}
		ResetCounters()
	}()
	wg.Wait()
	ResetCounters()
}

func TestCountersConcurrent(t *testing.T) {
	ResetCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				Inc("shared")
			}
		}()
	}
	wg.Wait()
	if got := Counter("shared"); got != 8000 {
		t.Errorf("concurrent increments lost: %d", got)
	}
	ResetCounters()
}
