package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := h.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("Max = %v", got)
	}
	if got := h.Percentile(50); math.Abs(got-50.5) > 0.01 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(99); got < 99 || got > 100 {
		t.Errorf("p99 = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.Percentile(50)) || !math.IsNaN(h.Stddev()) {
		t.Error("empty histogram should yield NaN")
	}
	if h.Summary() != "n/a" {
		t.Errorf("Summary = %q", h.Summary())
	}
}

func TestHistogramSingle(t *testing.T) {
	var h Histogram
	h.AddNs(5_000_000)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 5e6 {
			t.Errorf("p%v = %v", p, got)
		}
	}
	if !strings.Contains(h.Summary(), "mean=5.000ms") {
		t.Errorf("Summary = %q", h.Summary())
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	h.Add(2)
	h.Add(4)
	if got := h.Stddev(); got != 1 {
		t.Errorf("Stddev = %v", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(v)
		}
		if h.Count() == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return h.Percentile(pa) <= h.Percentile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedAddAndRead(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Percentile(50)
	h.Add(1) // re-sorts lazily
	if got := h.Min(); got != 1 {
		t.Errorf("Min after interleaved add = %v", got)
	}
}

func TestMs(t *testing.T) {
	if Ms(2_500_000) != 2.5 {
		t.Error("Ms conversion")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E1: latency", "n", "ftmp", "sequencer")
	tb.AddRow(2, 1.234567, "x")
	tb.AddRow(16, 9.0, "longer-cell")
	out := tb.String()
	if !strings.Contains(out, "E1: latency") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "1.235") {
		t.Errorf("float formatting: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: header and separator have same width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("separator misaligned:\n%s", out)
	}
}
