// Package trace provides the measurement utilities the experiment
// harness uses: latency samples with percentile summaries and aligned
// text tables matching the rows EXPERIMENTS.md records.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram collects latency (or any scalar) samples in nanoseconds.
// The zero value is ready to use.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// AddNs records one nanosecond sample.
func (h *Histogram) AddNs(ns int64) { h.Add(float64(ns)) }

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

func (h *Histogram) sortSamples() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100), interpolating
// between samples. It returns NaN with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return math.NaN()
	}
	h.sortSamples()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := p / 100 * float64(len(h.samples)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(h.samples) {
		return h.samples[lo]
	}
	return h.samples[lo]*(1-frac) + h.samples[lo+1]*frac
}

// Mean returns the arithmetic mean, or NaN with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Min returns the smallest sample, or NaN.
func (h *Histogram) Min() float64 { return h.Percentile(0) }

// Max returns the largest sample, or NaN.
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// Stddev returns the population standard deviation, or NaN.
func (h *Histogram) Stddev() float64 {
	if len(h.samples) == 0 {
		return math.NaN()
	}
	m := h.Mean()
	sum := 0.0
	for _, v := range h.samples {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(h.samples)))
}

// P50, P95, P99 and P999 name the quantiles the experiment tables and
// BENCH files report; all delegate to Percentile, so every harness uses
// the same (interpolating) definition.
func (h *Histogram) P50() float64  { return h.Percentile(50) }
func (h *Histogram) P95() float64  { return h.Percentile(95) }
func (h *Histogram) P99() float64  { return h.Percentile(99) }
func (h *Histogram) P999() float64 { return h.Percentile(99.9) }

// Summary formats mean/p50/p99 in milliseconds, the form the experiment
// tables use.
func (h *Histogram) Summary() string {
	if h.Count() == 0 {
		return "n/a"
	}
	return fmt.Sprintf("mean=%.3fms p50=%.3fms p99=%.3fms",
		h.Mean()/1e6, h.Percentile(50)/1e6, h.Percentile(99)/1e6)
}

// Ms converts a nanosecond quantity to milliseconds for table cells.
func Ms(ns float64) float64 { return ns / 1e6 }

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// Headers returns the column headers (shared; do not modify).
func (t *Table) Headers() []string { return t.headers }

// Rows returns the formatted rows (shared; do not modify). Together with
// Title and Headers it lets consumers re-render a table in another
// format, e.g. the JSON document ftmpbench -json emits.
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, hdr := range t.headers {
		widths[i] = len(hdr)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
