// Heartbeat tuning: reproduces the paper's section 5 guidance in one
// runnable sweep — "The choice of the heartbeat interval is a compromise
// between message latency and network traffic. A shorter heartbeat
// interval results in lower message latency but higher network traffic."
//
// The sweep runs a sparse workload through a 4-member group for each
// heartbeat interval and prints delivery latency next to packet rate,
// so the compromise is visible as two opposing columns.
//
//	go run ./examples/heartbeat-tuning
package main

import (
	"fmt"

	"ftmp/internal/harness"
	"ftmp/internal/simnet"
)

func main() {
	fmt.Println("FTMP heartbeat interval sweep (4 members, sparse single sender)")
	fmt.Println()
	intervals := []simnet.Time{
		1 * simnet.Millisecond,
		2 * simnet.Millisecond,
		5 * simnet.Millisecond,
		10 * simnet.Millisecond,
		20 * simnet.Millisecond,
		50 * simnet.Millisecond,
	}
	fmt.Print(harness.E3Heartbeat(intervals).String())
	fmt.Println()
	fmt.Println("Reading the table: halving the heartbeat interval roughly halves the")
	fmt.Println("idle-group ordering latency (messages wait for every member to be")
	fmt.Println("heard past their timestamp) and roughly doubles the packet rate —")
	fmt.Println("the compromise of paper section 5. Synchronized clocks (clock.Mode")
	fmt.Println("Synchronized in core.Config) shift the curve, as section 6 suggests.")
}
