// Replicated counter: a CORBA-style bank-account object actively
// replicated on three processors via the fault tolerance infrastructure.
// A client invokes deposits through GIOP requests carried by FTMP; one
// replica crashes mid-stream; the protocol convicts it, installs a new
// membership, and the surviving replicas keep answering with identical
// state — the paper's strong replica consistency goal.
//
//	go run ./examples/replicated-counter
package main

import (
	"fmt"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/giop"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/simnet"
)

const (
	clientOG = ids.ObjectGroupID(10)
	serverOG = ids.ObjectGroupID(20)
)

// account is the replicated servant. Deterministic: same requests in the
// same order produce the same state at every replica.
type account struct {
	owner   ids.ProcessorID
	balance int64
}

func (a *account) Invoke(op string, args []byte) ([]byte, *orb.Exception) {
	switch op {
	case "deposit":
		d := giop.NewDecoder(args, false)
		a.balance += d.LongLong()
		if d.Err() != nil {
			return nil, orb.ExcUnknown
		}
	case "balance":
	default:
		return nil, orb.ExcBadOperation
	}
	e := giop.NewEncoder(false)
	e.LongLong(a.balance)
	return e.Bytes(), nil
}

func amount(v int64) []byte {
	e := giop.NewEncoder(false)
	e.LongLong(v)
	return e.Bytes()
}

func main() {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)
	conn := ids.ConnectionID{ClientDomain: 1, ClientGroup: clientOG, ServerDomain: 1, ServerGroup: serverOG}

	cluster := harness.NewCluster(harness.Options{
		Seed: 7,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{serverOG: servers}
		},
	}, 1, 2, 3, 4)

	infras := make(map[ids.ProcessorID]*ftcorba.Infra)
	accounts := make(map[ids.ProcessorID]*account)
	for _, p := range []ids.ProcessorID{1, 2, 3, 4} {
		h := cluster.Host(p)
		infra := ftcorba.New(p, 1, h.Node)
		infras[p] = infra
		h.OnDeliver = infra.OnDeliver
		if servers.Contains(p) {
			acct := &account{owner: p}
			accounts[p] = acct
			infra.Serve(serverOG, "account", acct)
		} else {
			infra.RegisterObjectKey(serverOG, "account")
		}
	}

	// Establish the logical connection between the client and server
	// object groups (ConnectRequest / Connect, paper section 7).
	domainAddr := core.DefaultConfig(4).DomainAddr
	infras[4].Connect(int64(cluster.Net.Now()), conn, domainAddr, clients)
	if !cluster.RunUntil(10*simnet.Second, func() bool { return infras[4].Established(conn) }) {
		panic("connection not established")
	}
	fmt.Printf("connection established: %v carried by processor group %v\n",
		conn, mustGroup(cluster, infras[4], conn))

	// Deposit in a loop; crash replica 2 after the fifth reply.
	deposits := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	done := 0
	var lastBalance int64
	var issue func(i int)
	issue = func(i int) {
		if i >= len(deposits) {
			return
		}
		err := infras[4].Call(int64(cluster.Net.Now()), conn, "deposit", amount(deposits[i]),
			func(result []byte, err error) {
				if err != nil {
					panic(err)
				}
				d := giop.NewDecoder(result, false)
				lastBalance = d.LongLong()
				done++
				fmt.Printf("deposit %3d -> balance %3d\n", deposits[i], lastBalance)
				if done == 5 {
					fmt.Println("-- crashing replica P2 --")
					cluster.Crash(2)
				}
				cluster.Net.At(cluster.Net.Now(), func() { issue(i + 1) })
			})
		if err != nil {
			panic(err)
		}
	}
	cluster.Net.At(cluster.Net.Now(), func() { issue(0) })
	if !cluster.RunUntil(120*simnet.Second, func() bool { return done == len(deposits) }) {
		panic(fmt.Sprintf("only %d/%d deposits completed", done, len(deposits)))
	}
	cluster.RunFor(simnet.Second)

	// The survivors converged on the same state; the group healed.
	fmt.Printf("\nfinal balance from client: %d\n", lastBalance)
	for _, p := range []ids.ProcessorID{1, 3} {
		fmt.Printf("replica %v balance: %d\n", p, accounts[p].balance)
		if accounts[p].balance != lastBalance {
			panic("replica divergence")
		}
	}
	g := infras[4].Stats()
	fmt.Printf("client saw %d replies, suppressed %d duplicates\n", g.RepliesDelivered, g.DuplicateReplies)
	for _, f := range cluster.Host(4).Faults {
		fmt.Printf("fault report: %v convicted in group %v\n", f.Convicted, f.Group)
	}
	if v, ok := cluster.Host(4).LastView(mustGroup(cluster, infras[4], conn)); ok {
		fmt.Printf("final membership: %v (%v)\n", v.Members, v.Reason)
	}
}

func mustGroup(c *harness.Cluster, infra *ftcorba.Infra, conn ids.ConnectionID) ids.GroupID {
	st := c.Host(4).Node.ConnectionState(conn)
	if st == nil {
		panic("no connection state")
	}
	return st.Group
}
