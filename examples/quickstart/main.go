// Quickstart: five processors form an FTMP processor group and multicast
// interleaved messages; every processor delivers exactly the same
// sequence — the reliable totally-ordered service of the paper.
//
// The example runs on the deterministic simulated network, so its output
// is identical on every machine:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

func main() {
	const group = ids.GroupID(1)
	procs := []ids.ProcessorID{1, 2, 3, 4, 5}

	// A 5-node cluster on a simulated LAN: 200us one-way latency, 50us
	// jitter, and (to make reliability earn its keep) 5% packet loss.
	netCfg := simnet.NewConfig()
	netCfg.LossRate = 0.05
	cluster := harness.NewCluster(harness.Options{Seed: 42, Net: netCfg}, procs...)

	// The fault tolerance infrastructure bootstraps the processor group
	// with a static membership.
	members := ids.NewMembership(procs...)
	cluster.CreateGroup(group, members)

	// Each processor multicasts three messages at staggered times.
	for i := 0; i < 3; i++ {
		for _, p := range procs {
			p, i := p, i
			at := simnet.Time(i*7+int(p)) * simnet.Millisecond
			cluster.Net.At(at, func() {
				msg := fmt.Sprintf("msg %d from %v", i, p)
				if err := cluster.Multicast(p, group, msg); err != nil {
					panic(err)
				}
			})
		}
	}

	// Run until every member has delivered all 15 messages.
	total := 3 * len(procs)
	if !cluster.RunUntil(30*simnet.Second, cluster.AllDelivered(group, members, total)) {
		panic("messages not delivered")
	}

	// Every processor delivered the same sequence.
	fmt.Println("agreed delivery order (identical at all 5 processors):")
	for i, payload := range cluster.Host(1).DeliveredPayloads(group) {
		fmt.Printf("  %2d. %s\n", i+1, payload)
	}
	for _, p := range procs[1:] {
		a := cluster.Host(procs[0]).DeliveredPayloads(group)
		b := cluster.Host(p).DeliveredPayloads(group)
		for i := range a {
			if a[i] != b[i] {
				panic(fmt.Sprintf("order disagreement at %v index %d", p, i))
			}
		}
	}
	st := cluster.Host(1).Node.Stats()
	fmt.Printf("\nP1 protocol stats: %d msgs sent, %d heartbeats, %d NACKs, %d retransmissions\n",
		st.MessagesSent, st.HeartbeatsSent, st.RMP.NacksSent, st.RMP.Retransmissions)
	fmt.Println("total order held under 5% packet loss.")
}
