// Replicated key-value store: three server replicas, two replicated
// clients. The clients issue the same deterministic sequence of PUT/GET
// requests — as replicated CORBA clients do — and the (connection id,
// request number) machinery of paper section 4 collapses the duplicate
// requests and replies to exactly-once semantics. The example also shows
// state transfer: a fourth server replica joins mid-run and converges.
//
//	go run ./examples/keyvalue-store
package main

import (
	"fmt"
	"sort"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/giop"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/simnet"
)

const (
	clientOG = ids.ObjectGroupID(11)
	serverOG = ids.ObjectGroupID(21)
)

// kvStore is the replicated servant: a string map with CDR-marshalled
// operations and full state transfer support.
type kvStore struct {
	data map[string]string
}

func newKV() *kvStore { return &kvStore{data: make(map[string]string)} }

func (s *kvStore) Invoke(op string, args []byte) ([]byte, *orb.Exception) {
	d := giop.NewDecoder(args, false)
	switch op {
	case "put":
		k, v := d.String(), d.String()
		if d.Err() != nil {
			return nil, orb.ExcUnknown
		}
		s.data[k] = v
		return nil, nil
	case "get":
		k := d.String()
		if d.Err() != nil {
			return nil, orb.ExcUnknown
		}
		v, ok := s.data[k]
		if !ok {
			return nil, &orb.Exception{RepoID: "IDL:kv/NotFound:1.0"}
		}
		e := giop.NewEncoder(false)
		e.String(v)
		return e.Bytes(), nil
	case "size":
		e := giop.NewEncoder(false)
		e.ULong(uint32(len(s.data)))
		return e.Bytes(), nil
	default:
		return nil, orb.ExcBadOperation
	}
}

// SnapshotState implements ftcorba.Stateful.
func (s *kvStore) SnapshotState() ([]byte, error) {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e := giop.NewEncoder(false)
	e.ULong(uint32(len(keys)))
	for _, k := range keys {
		e.String(k)
		e.String(s.data[k])
	}
	return e.Bytes(), nil
}

// RestoreState implements ftcorba.Stateful.
func (s *kvStore) RestoreState(b []byte) error {
	d := giop.NewDecoder(b, false)
	n := d.ULong()
	m := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		k := d.String()
		v := d.String()
		m[k] = v
	}
	if err := d.Err(); err != nil {
		return err
	}
	s.data = m
	return nil
}

func putArgs(k, v string) []byte {
	e := giop.NewEncoder(false)
	e.String(k)
	e.String(v)
	return e.Bytes()
}

func getArgs(k string) []byte {
	e := giop.NewEncoder(false)
	e.String(k)
	return e.Bytes()
}

func main() {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(5, 6)
	conn := ids.ConnectionID{ClientDomain: 1, ClientGroup: clientOG, ServerDomain: 1, ServerGroup: serverOG}

	cluster := harness.NewCluster(harness.Options{
		Seed: 11,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{serverOG: servers}
		},
	}, 1, 2, 3, 4, 5, 6)

	infras := make(map[ids.ProcessorID]*ftcorba.Infra)
	stores := make(map[ids.ProcessorID]*kvStore)
	for _, p := range cluster.Procs() {
		h := cluster.Host(p)
		infra := ftcorba.New(p, 1, h.Node)
		infras[p] = infra
		h.OnDeliver = infra.OnDeliver
		switch {
		case servers.Contains(p):
			kv := newKV()
			stores[p] = kv
			infra.Serve(serverOG, "kv", kv)
		case clients.Contains(p):
			infra.RegisterObjectKey(serverOG, "kv")
		}
	}

	// Both client replicas open the connection (duplicate ConnectRequests
	// are ignored by the server, paper section 7).
	domainAddr := core.DefaultConfig(5).DomainAddr
	now := int64(cluster.Net.Now())
	infras[5].Connect(now, conn, domainAddr, clients)
	infras[6].Connect(now, conn, domainAddr, clients)
	if !cluster.RunUntil(10*simnet.Second, func() bool {
		return infras[5].Established(conn) && infras[6].Established(conn)
	}) {
		panic("connection not established")
	}

	// Both replicated clients issue the SAME deterministic script.
	script := []struct{ op, k, v string }{
		{"put", "alpha", "1"}, {"put", "beta", "2"}, {"put", "gamma", "3"},
		{"get", "beta", ""}, {"put", "beta", "22"}, {"get", "beta", ""},
	}
	done := map[ids.ProcessorID]int{}
	for _, cp := range clients {
		cp := cp
		var issue func(i int)
		issue = func(i int) {
			if i >= len(script) {
				return
			}
			s := script[i]
			var args []byte
			if s.op == "put" {
				args = putArgs(s.k, s.v)
			} else {
				args = getArgs(s.k)
			}
			err := infras[cp].Call(int64(cluster.Net.Now()), conn, s.op, args, func(result []byte, err error) {
				if s.op == "get" && cp == clients[0] {
					d := giop.NewDecoder(result, false)
					fmt.Printf("get %s -> %q\n", s.k, d.String())
				}
				done[cp]++
				cluster.Net.At(cluster.Net.Now(), func() { issue(i + 1) })
			})
			if err != nil {
				panic(err)
			}
		}
		cluster.Net.At(cluster.Net.Now(), func() { issue(0) })
	}
	if !cluster.RunUntil(60*simnet.Second, func() bool {
		return done[clients[0]] == len(script) && done[clients[1]] == len(script)
	}) {
		panic("script incomplete")
	}
	cluster.RunFor(simnet.Second)

	var dups uint64
	for _, p := range servers {
		dups += infras[p].Stats().DuplicateRequests
	}
	fmt.Printf("\n%d logical requests; %d duplicate requests suppressed at the server replicas\n",
		len(script), dups)

	// A fourth server replica joins: processor group change, then state
	// transfer positioned in the total order (paper section 7.1 and the
	// Eternal-style snapshot protocol, see internal/ftcorba).
	fmt.Println("-- adding server replica P4 with state transfer --")
	g := cluster.Host(5).Node.ConnectionState(conn).Group
	kv4 := newKV()
	stores[4] = kv4
	infras[4].ServeJoining(serverOG, "kv", kv4)
	cluster.Host(4).Node.ListenGroup(g)
	if err := cluster.Host(1).Node.RequestAddProcessor(int64(cluster.Net.Now()), g, 4); err != nil {
		panic(err)
	}
	full := ids.NewMembership(1, 2, 3, 4, 5, 6)
	if !cluster.RunUntil(30*simnet.Second, func() bool {
		return cluster.Host(4).Node.Members(g).Equal(full)
	}) {
		panic("P4 never joined the processor group")
	}
	if err := infras[1].AddReplica(int64(cluster.Net.Now()), conn, serverOG); err != nil {
		panic(err)
	}
	if !cluster.RunUntil(30*simnet.Second, func() bool {
		return infras[4].Stats().StateTransfers == 1
	}) {
		panic("state transfer incomplete")
	}
	// One more write so the new replica proves it tracks the stream.
	fin := false
	err := infras[5].Call(int64(cluster.Net.Now()), conn, "put", putArgs("delta", "4"), func([]byte, error) { fin = true })
	if err != nil {
		panic(err)
	}
	cluster.RunUntil(30*simnet.Second, func() bool { return fin })
	cluster.RunFor(simnet.Second)

	for _, p := range []ids.ProcessorID{1, 2, 3, 4} {
		snap, _ := stores[p].SnapshotState()
		fmt.Printf("replica %v: %d keys, state digest %d bytes\n", p, len(stores[p].data), len(snap))
	}
	a, _ := stores[1].SnapshotState()
	b, _ := stores[4].SnapshotState()
	if string(a) != string(b) {
		panic("new replica diverged")
	}
	fmt.Println("new replica state identical to the originals.")
}
