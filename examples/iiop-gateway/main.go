// IIOP gateway: an ordinary CORBA client (plain GIOP over TCP, no
// knowledge of replication) invokes an object that is actively
// replicated on two processors. The gateway forwards each request over
// FTMP — real UDP sockets on the loopback interface — to both replicas,
// which execute it exactly once each, and returns the group's reply on
// the TCP connection. This is the Eternal system's gateway role for
// clients outside the replication domain.
//
//	go run ./examples/iiop-gateway
package main

import (
	"fmt"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/gateway"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/runtime"
	"ftmp/internal/transport"
	"ftmp/internal/wire"
)

const (
	clientOG = ids.ObjectGroupID(10)
	serverOG = ids.ObjectGroupID(20)
)

// inventory is the replicated servant: a deterministic stock counter.
type inventory struct{ stock int64 }

func (inv *inventory) Invoke(op string, args []byte) ([]byte, *orb.Exception) {
	d := giop.NewDecoder(args, false)
	switch op {
	case "restock":
		inv.stock += d.LongLong()
	case "take":
		n := d.LongLong()
		if n > inv.stock {
			return nil, &orb.Exception{RepoID: "IDL:shop/OutOfStock:1.0"}
		}
		inv.stock -= n
	case "stock":
	default:
		return nil, orb.ExcBadOperation
	}
	if d.Err() != nil {
		return nil, orb.ExcUnknown
	}
	e := giop.NewEncoder(false)
	e.LongLong(inv.stock)
	return e.Bytes(), nil
}

func main() {
	servers := ids.NewMembership(1, 2)
	conn := ids.ConnectionID{ClientDomain: 1, ClientGroup: clientOG, ServerDomain: 1, ServerGroup: serverOG}

	runners := make(map[ids.ProcessorID]*runtime.Runner)
	infras := make(map[ids.ProcessorID]*ftcorba.Infra)
	invs := make(map[ids.ProcessorID]*inventory)
	var meshes []*transport.UDPMesh

	for i := 1; i <= 3; i++ {
		p := ids.ProcessorID(i)
		cfg := core.DefaultConfig(p)
		cfg.HeartbeatInterval = 2_000_000
		cfg.PGMP.SuspectTimeout = 2_000_000_000 // tolerate scheduler jitter
		cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{serverOG: servers}
		var r *runtime.Runner
		var infra *ftcorba.Infra
		cb := core.Callbacks{
			Transmit: func(wire.MulticastAddr, []byte) {},
			Deliver:  func(d core.Delivery) { infra.OnDeliver(d, r.Now()) },
		}
		var mesh *transport.UDPMesh
		var err error
		r, err = runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
			m, e := transport.NewUDPMesh("127.0.0.1:0", h)
			mesh = m
			return m, e
		}, runtime.Options{})
		if err != nil {
			panic(err)
		}
		defer r.Close()
		infra = ftcorba.New(p, 1, r.Node)
		if servers.Contains(p) {
			inv := &inventory{}
			invs[p] = inv
			infra.Serve(serverOG, "inventory", inv)
		} else {
			infra.RegisterObjectKey(serverOG, "inventory")
		}
		runners[p] = r
		infras[p] = infra
		meshes = append(meshes, mesh)
	}
	for _, m := range meshes {
		for _, peer := range meshes {
			if err := m.AddPeer(peer.LocalAddr()); err != nil {
				panic(err)
			}
		}
	}

	// Processor 3 hosts the gateway; it opens the logical connection.
	domainAddr := core.DefaultConfig(3).DomainAddr
	runners[3].Do(func(_ *core.Node, now int64) {
		infras[3].Connect(now, conn, domainAddr, ids.NewMembership(3))
	})
	for {
		ok := false
		runners[3].Do(func(*core.Node, int64) { ok = infras[3].Established(conn) })
		if ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	gw := gateway.New(runners[3], infras[3], conn)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer gw.Close()
	fmt.Printf("gateway listening on %s (IIOP), replicas on processors %v over UDP\n\n", addr, servers)

	// An off-the-shelf IIOP client, oblivious to the replication.
	cli, err := orb.Dial(addr)
	if err != nil {
		panic(err)
	}
	defer cli.Close()
	call := func(op string, n int64) {
		e := giop.NewEncoder(false)
		e.LongLong(n)
		out, err := cli.Invoke("inventory", op, e.Bytes())
		if err != nil {
			fmt.Printf("%-8s %3d -> error: %v\n", op, n, err)
			return
		}
		d := giop.NewDecoder(out, false)
		fmt.Printf("%-8s %3d -> stock %3d\n", op, n, d.LongLong())
	}
	call("restock", 100)
	call("take", 30)
	call("take", 80) // user exception from the replicated servant
	call("take", 20)
	call("stock", 0)

	// Both replicas hold identical state (strong replica consistency).
	time.Sleep(50 * time.Millisecond)
	fmt.Println()
	for _, p := range servers {
		fmt.Printf("replica %v stock: %d\n", p, invs[p].stock)
	}
	if invs[1].stock != invs[2].stock {
		panic("replica divergence")
	}
	fmt.Println("replicas consistent; TCP client never knew.")
}
