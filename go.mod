module ftmp

go 1.22
